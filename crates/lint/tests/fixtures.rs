//! Fixture-driven tests for the lint rules: one deliberately-violating and
//! one clean file per rule, the `lint:allow` escape-hatch semantics, and
//! string/comment/test-code false-positive traps. Assertions are exact
//! `(rule, line)` sets, so a scanner regression names the drifted site.
//!
//! The fixture files live in `tests/fixtures/`, which both cargo and the
//! workspace walker skip; tests feed their contents to [`check_file`]
//! under a pretended in-scope path.

use std::path::Path;
use whatsup_lint::{check_file, lint_workspace, Config, Finding, Rule};

fn fixture(name: &str) -> String {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    std::fs::read_to_string(dir.join(name)).unwrap()
}

/// `(rule, line, allowed?)` triples for a fixture linted as if it lived at
/// `crates/core/src/<name>` — in scope for every rule under
/// [`Config::all_everywhere`].
fn findings(name: &str) -> Vec<(Rule, u32, bool)> {
    let path = format!("crates/core/src/{name}");
    check_file(&path, &fixture(name), &Config::all_everywhere())
        .into_iter()
        .map(|f| (f.rule, f.line, f.allowed.is_some()))
        .collect()
}

#[test]
fn det_map_flags_hash_collections() {
    assert_eq!(
        findings("det_map.rs"),
        vec![(Rule::DetMap, 1, false), (Rule::DetMap, 4, false)]
    );
    assert_eq!(findings("det_map_clean.rs"), vec![]);
}

#[test]
fn det_clock_flags_wall_clock_reads() {
    // Line 1 imports `Instant` without calling `::now` — not a read, not
    // flagged. Line 3 names `SystemTime`, line 4 calls `Instant::now()`.
    assert_eq!(
        findings("det_clock.rs"),
        vec![(Rule::DetClock, 3, false), (Rule::DetClock, 4, false)]
    );
    assert_eq!(findings("det_clock_clean.rs"), vec![]);
}

#[test]
fn wire_panic_flags_panicking_decode() {
    assert_eq!(
        findings("wire_panic.rs"),
        vec![
            (Rule::WirePanic, 2, false), // .unwrap()
            (Rule::WirePanic, 3, false), // .expect(...)
            (Rule::WirePanic, 5, false), // panic!
            (Rule::WirePanic, 7, false), // buf[2]
        ]
    );
    assert_eq!(findings("wire_panic_clean.rs"), vec![]);
}

#[test]
fn wire_cast_flags_truncating_length_casts() {
    assert_eq!(findings("wire_cast.rs"), vec![(Rule::WireCast, 2, false)]);
    assert_eq!(findings("wire_cast_clean.rs"), vec![]);
}

#[test]
fn safety_comment_requires_a_safety_line() {
    assert_eq!(
        findings("safety_comment.rs"),
        vec![(Rule::SafetyComment, 2, false)]
    );
    assert_eq!(findings("safety_comment_clean.rs"), vec![]);
}

#[test]
fn allow_hatch_suppresses_with_reason_and_records() {
    // Trailing (line 1) and standalone (line 3 → 4) allows with reasons
    // suppress but stay in the report; a reasonless allow (line 8) does
    // not suppress line 9; an allow inside a string (line 14) is inert, so
    // line 15 is a violation.
    assert_eq!(
        findings("allow_hatch.rs"),
        vec![
            (Rule::DetMap, 1, true),
            (Rule::DetMap, 4, true),
            (Rule::DetMap, 9, false),
            (Rule::DetMap, 15, false),
        ]
    );
}

#[test]
fn allow_reasons_are_recorded_verbatim() {
    let path = "crates/core/src/allow_hatch.rs";
    let all = check_file(path, &fixture("allow_hatch.rs"), &Config::all_everywhere());
    let reasons: Vec<&str> = all.iter().filter_map(|f| f.allowed.as_deref()).collect();
    assert_eq!(
        reasons,
        vec![
            "probe-only map, never iterated",
            "standalone: governs the next code line",
        ]
    );
}

#[test]
fn strings_comments_and_test_code_are_inert() {
    assert_eq!(findings("traps.rs"), vec![]);
}

#[test]
fn harness_paths_are_never_linted() {
    // The same violating content is skipped wholesale when the file lives
    // under a tests/, benches/, examples/ or fixtures/ segment.
    let source = fixture("det_map.rs");
    for path in [
        "crates/core/tests/det_map.rs",
        "crates/lint/tests/fixtures/det_map.rs",
        "crates/bench/benches/det_map.rs",
        "examples/det_map.rs",
    ] {
        assert_eq!(check_file(path, &source, &Config::all_everywhere()), vec![]);
    }
}

#[test]
fn workspace_scopes_gate_rules_by_path() {
    let source = fixture("det_map.rs");
    let config = Config::workspace_default();
    // In a determinism-critical crate the HashMap is a violation...
    let hits: Vec<Rule> = check_file("crates/core/src/x.rs", &source, &config)
        .into_iter()
        .map(|f| f.rule)
        .collect();
    assert_eq!(hits, vec![Rule::DetMap, Rule::DetMap]);
    // ...but the dataset loaders may hash freely.
    assert_eq!(
        check_file("crates/datasets/src/x.rs", &source, &config),
        vec![]
    );
    // Wire rules likewise apply only on the decode surface.
    let panicky = fixture("wire_panic.rs");
    assert!(!check_file("crates/net/src/codec.rs", &panicky, &config).is_empty());
    assert_eq!(
        check_file("crates/net/src/peer.rs", &panicky, &config),
        vec![]
    );
}

/// The committed tree is lint-clean under the workspace contract: zero
/// violations (annotated sites are fine). This is the same check CI runs
/// via `cargo run -p whatsup-lint -- --check`, kept in `cargo test` so a
/// plain test run catches contract drift too.
#[test]
fn committed_tree_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = lint_workspace(&root, &Config::workspace_default()).unwrap();
    let render = |fs: &[Finding]| {
        fs.iter()
            .map(|f| format!("  {}:{}: {}\n", f.path, f.line, f.rule))
            .collect::<String>()
    };
    assert!(
        report.violations.is_empty(),
        "workspace has lint violations:\n{}",
        render(&report.violations)
    );
    assert!(report.files_scanned > 100, "walker found the workspace");
}
