//! Strings, comments, and test-only code mentioning rule triggers are
//! inert: this file must produce zero findings under every rule.

pub fn commentary() -> String {
    // A HashMap mention in a comment is fine; so is .unwrap() or panic!().
    /* Block comments too: SystemTime, Instant::now(), buf[0]. */
    let s = "HashMap::new().unwrap() as u16 panic! unsafe";
    let r = r#"raw string: HashSet and Instant::now() and len as u32"#;
    let lifetime_not_char: &'static str = "ok";
    let range = (0..s.len()).count() + r.len() + lifetime_not_char.len();
    format!("{s}{range}")
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn test_helpers_may_do_anything() {
        let mut m = HashMap::new();
        m.insert(1u32, 2u32);
        assert_eq!(m.get(&1).copied().unwrap(), 2);
        let buf = [1u8, 2];
        let _ = buf[0];
    }
}
