pub fn read_first(v: &[u32]) -> u32 {
    // SAFETY: the caller guarantees `v` is non-empty.
    unsafe { *v.as_ptr() }
}
