pub fn read_first(v: &[u32]) -> u32 {
    unsafe { *v.as_ptr() }
}
