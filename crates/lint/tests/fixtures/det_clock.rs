use std::time::Instant;

pub fn stamp(since: std::time::SystemTime) -> bool {
    let t = Instant::now();
    since.elapsed().is_ok() && t.elapsed().as_secs() == 0
}
