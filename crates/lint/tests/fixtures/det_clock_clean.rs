pub fn elapsed(now: u32, started: u32) -> u32 {
    now.saturating_sub(started)
}
