use std::collections::HashMap;

pub fn tally(xs: &[u32]) -> usize {
    let mut seen = HashMap::new();
    for &x in xs {
        seen.insert(x, ());
    }
    seen.len()
}
