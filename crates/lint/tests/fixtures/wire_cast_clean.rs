pub fn header(entries: &[u8]) -> Option<u16> {
    u16::try_from(entries.len()).ok()
}
