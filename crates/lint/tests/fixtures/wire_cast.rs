pub fn header(entries: &[u8]) -> u16 {
    let count = entries.len() as u16;
    count
}
