use std::collections::HashMap; // lint:allow(det-map) probe-only map, never iterated

// lint:allow(det-map) standalone: governs the next code line
pub fn lookup(m: &HashMap<u32, u32>, k: u32) -> Option<u32> {
    m.get(&k).copied()
}

// lint:allow(det-map)
pub fn size(m: &HashMap<u32, u32>) -> usize {
    m.len()
}

pub fn string_allow_is_inert(k: u32) -> u32 {
    let _claim = "// lint:allow(det-map) strings are not comments";
    let m: HashMap<u32, u32> = HashMap::default();
    m.get(&k).copied().unwrap_or(k)
}
