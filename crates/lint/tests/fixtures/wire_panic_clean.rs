pub fn decode(buf: &[u8]) -> Option<(u8, u8)> {
    let first = *buf.first()?;
    let second = *buf.get(1)?;
    Some((first, second))
}
