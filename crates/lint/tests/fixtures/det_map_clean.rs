use std::collections::BTreeMap;

pub fn tally(xs: &[u32]) -> usize {
    let mut seen = BTreeMap::new();
    for &x in xs {
        seen.insert(x, ());
    }
    seen.len()
}
