pub fn decode(buf: &[u8]) -> (u8, u8) {
    let first = buf.first().unwrap();
    let second = buf.get(1).expect("short frame");
    if buf.is_empty() {
        panic!("oversized");
    }
    (*first, second + buf[2])
}
