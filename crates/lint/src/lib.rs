//! `whatsup-lint`: in-tree static analysis enforcing the workspace's
//! determinism and wire-safety contracts.
//!
//! The repo's core claim — bit-identical reports across shard counts,
//! transports and supervised recovery — is property-tested after the fact,
//! but nothing in the compiler stops a new change from iterating a
//! `HashMap` in a report path or reading a wall clock inside an engine.
//! This crate is the compile-adjacent gate: a small hand-rolled token
//! scanner (no crates.io access, so no `syn`; see [`scan`]) walks every
//! `.rs` file in the workspace and enforces five rules with per-crate
//! scopes (see [`rules::Config::workspace_default`]):
//!
//! | rule | contract |
//! |------|----------|
//! | `det-map` | no `HashMap`/`HashSet` in determinism-critical crates |
//! | `det-clock` | no `Instant::now`/`SystemTime` outside the net runtime |
//! | `wire-panic` | no panicking decode of untrusted wire input |
//! | `wire-cast` | no truncating `as` casts on wire length/count fields |
//! | `safety-comment` | every `unsafe` carries a `// SAFETY:` line |
//!
//! Sites that are individually safe carry an inline escape hatch —
//! `// lint:allow(<rule>) <reason>` — which suppresses the finding but
//! records it (with its reason) in the report, so the audit trail lives
//! next to the code. A reason is mandatory; a bare `lint:allow` does not
//! suppress.
//!
//! Run as `cargo run -p whatsup-lint -- --check` (the CI gate) or without
//! `--check` for the full report including annotated sites; `--format
//! json` emits a machine-readable report.

pub mod rules;
pub mod scan;

pub use rules::{check_file, Config, Finding, Rule, Scope};

use std::fs;
use std::path::{Path, PathBuf};

/// A whole-workspace lint result: violations (fatal under `--check`) and
/// annotated sites (recorded, never fatal).
#[derive(Debug, Default)]
pub struct Report {
    pub violations: Vec<Finding>,
    pub allowed: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// Walks `root` for `.rs` files (skipping `target/`, VCS metadata and the
/// lint fixtures) and lints each against `config`. File order is sorted,
/// so output is deterministic.
pub fn lint_workspace(root: &Path, config: &Config) -> std::io::Result<Report> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut report = Report::default();
    for rel in files {
        let source = fs::read_to_string(root.join(&rel))?;
        let rel_str = rel
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        for finding in check_file(&rel_str, &source, config) {
            if finding.allowed.is_some() {
                report.allowed.push(finding);
            } else {
                report.violations.push(finding);
            }
        }
        report.files_scanned += 1;
    }
    Ok(report)
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // `fixtures/` holds deliberately-violating inputs for the
            // lint's own tests; `target/` holds build products.
            if matches!(
                name.as_ref(),
                "target" | ".git" | "fixtures" | "node_modules"
            ) {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

impl Report {
    /// Human-readable rendering: one `file:line: rule: excerpt` per
    /// violation, then the annotated sites with their reasons.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.violations {
            out.push_str(&format!(
                "{}:{}: {}: {}\n",
                f.path, f.line, f.rule, f.excerpt
            ));
        }
        if !self.allowed.is_empty() {
            out.push_str(&format!(
                "\n{} annotated site(s) (lint:allow):\n",
                self.allowed.len()
            ));
            for f in &self.allowed {
                out.push_str(&format!(
                    "{}:{}: {} allowed: {}\n",
                    f.path,
                    f.line,
                    f.rule,
                    f.allowed.as_deref().unwrap_or("")
                ));
            }
        }
        out.push_str(&format!(
            "\n{} file(s) scanned, {} violation(s), {} annotated\n",
            self.files_scanned,
            self.violations.len(),
            self.allowed.len()
        ));
        out
    }

    /// Strict-JSON rendering (hand-rolled; the serde shims live above this
    /// crate in the dependency order on purpose — the linter depends on
    /// nothing it lints).
    pub fn render_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    '\r' => out.push_str("\\r"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        fn finding(f: &Finding) -> String {
            let mut obj = format!(
                "{{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"excerpt\": \"{}\"",
                esc(&f.path),
                f.line,
                f.rule,
                esc(&f.excerpt)
            );
            if let Some(reason) = &f.allowed {
                obj.push_str(&format!(", \"allowed\": \"{}\"", esc(reason)));
            }
            obj.push('}');
            obj
        }
        let violations: Vec<String> = self.violations.iter().map(finding).collect();
        let allowed: Vec<String> = self.allowed.iter().map(finding).collect();
        format!(
            "{{\"files_scanned\": {}, \"violations\": [{}], \"allowed\": [{}]}}",
            self.files_scanned,
            violations.join(", "),
            allowed.join(", ")
        )
    }
}
