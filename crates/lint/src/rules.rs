//! The rule set: what each check means, where it applies, and the token
//! passes that implement it.

use crate::scan::{scan, TokKind, Token};
use std::collections::BTreeMap;
use std::fmt;

/// The five contract rules. Names (the `lint:allow` keys) are kebab-case.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// No `HashMap`/`HashSet` in determinism-critical code: report paths
    /// must never depend on unspecified iteration order. Use `BTreeMap`/
    /// `BTreeSet` or annotate a probe-only/sorted-before-iteration use.
    DetMap,
    /// No wall-clock reads (`Instant::now`, `SystemTime`) outside the
    /// real-network runtime/emulator and the socket-transport deadline
    /// code: simulated time is the only clock the engines may see.
    DetClock,
    /// No `unwrap`/`expect`/`panic!`-family macros or unchecked slice
    /// indexing in wire decode paths: untrusted bytes must surface typed
    /// errors, never a crash.
    WirePanic,
    /// No truncating `as` casts on wire length/count fields: a silently
    /// wrapped count corrupts the frame for every later field.
    WireCast,
    /// Every `unsafe` carries a `// SAFETY:` comment on the same or an
    /// immediately preceding line.
    SafetyComment,
}

pub const ALL_RULES: [Rule; 5] = [
    Rule::DetMap,
    Rule::DetClock,
    Rule::WirePanic,
    Rule::WireCast,
    Rule::SafetyComment,
];

impl Rule {
    pub fn name(self) -> &'static str {
        match self {
            Rule::DetMap => "det-map",
            Rule::DetClock => "det-clock",
            Rule::WirePanic => "wire-panic",
            Rule::WireCast => "wire-cast",
            Rule::SafetyComment => "safety-comment",
        }
    }

    pub fn from_name(name: &str) -> Option<Rule> {
        ALL_RULES.iter().copied().find(|r| r.name() == name)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Where one rule applies: workspace-relative path prefixes (`/`-separated;
/// a prefix of `""` matches everything). A file is in scope when it matches
/// an include prefix and no exclude prefix. Paths containing a `tests/`,
/// `benches/`, `examples/` or `fixtures/` segment are always out of scope —
/// the contracts govern shipped code, not test harnesses.
#[derive(Debug, Clone, Default)]
pub struct Scope {
    pub include: Vec<String>,
    pub exclude: Vec<String>,
}

impl Scope {
    pub fn matches(&self, rel_path: &str) -> bool {
        self.include
            .iter()
            .any(|p| rel_path.starts_with(p.as_str()))
            && !self
                .exclude
                .iter()
                .any(|p| rel_path.starts_with(p.as_str()))
    }
}

/// Per-rule scopes. [`Config::workspace_default`] encodes this repository's
/// contract; fixture tests build narrow configs by hand.
#[derive(Debug, Clone)]
pub struct Config {
    pub scopes: BTreeMap<Rule, Scope>,
}

impl Config {
    /// A config applying every rule to every scanned file (fixture tests).
    pub fn all_everywhere() -> Self {
        let mut scopes = BTreeMap::new();
        for rule in ALL_RULES {
            scopes.insert(
                rule,
                Scope {
                    include: vec![String::new()],
                    exclude: vec![],
                },
            );
        }
        Config { scopes }
    }

    /// This repository's contract, one scope per rule:
    ///
    /// * `det-map` — the determinism-critical crates: `core`, `gossip`,
    ///   `metrics`, and all of `sim` (engine, engines, scenario pipeline —
    ///   everything that feeds a `SimReport`).
    /// * `det-clock` — everywhere except the real-network runtime and
    ///   emulator (`crates/net/src/runtime.rs`, `emulator.rs`), the socket
    ///   transport's deadline code
    ///   (`crates/sim/src/engine/exchange/socket.rs`), the benchmark crate
    ///   (wall clocks are its purpose) and the dependency shims.
    /// * `wire-panic` / `wire-cast` — the untrusted-input decode surface:
    ///   `crates/net/src/codec.rs` and the anti-entropy digest/delta frame
    ///   readers.
    /// * `safety-comment` — everywhere except the shims (which mirror
    ///   upstream crates' APIs verbatim).
    pub fn workspace_default() -> Self {
        let mut scopes = BTreeMap::new();
        scopes.insert(
            Rule::DetMap,
            Scope {
                include: vec![
                    "crates/core/src/".into(),
                    "crates/gossip/src/".into(),
                    "crates/metrics/src/".into(),
                    "crates/sim/src/".into(),
                ],
                exclude: vec![],
            },
        );
        scopes.insert(
            Rule::DetClock,
            Scope {
                include: vec!["crates/".into(), "src/".into()],
                exclude: vec![
                    "crates/net/src/runtime.rs".into(),
                    "crates/net/src/emulator.rs".into(),
                    "crates/sim/src/engine/exchange/socket.rs".into(),
                    "crates/bench/".into(),
                    "crates/shims/".into(),
                ],
            },
        );
        let wire = Scope {
            include: vec![
                "crates/net/src/codec.rs".into(),
                "crates/sim/src/engines/antientropy/digest.rs".into(),
                "crates/sim/src/engines/antientropy/delta.rs".into(),
            ],
            exclude: vec![],
        };
        scopes.insert(Rule::WirePanic, wire.clone());
        scopes.insert(Rule::WireCast, wire);
        scopes.insert(
            Rule::SafetyComment,
            Scope {
                include: vec!["crates/".into(), "src/".into()],
                exclude: vec!["crates/shims/".into()],
            },
        );
        Config { scopes }
    }
}

/// One rule hit. `allowed` carries the `lint:allow` reason when the site is
/// annotated — such findings are recorded, not fatal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: Rule,
    pub path: String,
    pub line: u32,
    pub excerpt: String,
    pub allowed: Option<String>,
}

/// Path segments that take a file out of every rule's scope.
fn harness_path(rel_path: &str) -> bool {
    rel_path.split('/').any(|seg| {
        matches!(
            seg,
            "tests" | "benches" | "examples" | "fixtures" | "target"
        )
    })
}

/// Lints one file. `rel_path` is workspace-relative with `/` separators.
pub fn check_file(rel_path: &str, source: &str, config: &Config) -> Vec<Finding> {
    if harness_path(rel_path) {
        return Vec::new();
    }
    let active: Vec<Rule> = ALL_RULES
        .iter()
        .copied()
        .filter(|r| config.scopes.get(r).is_some_and(|s| s.matches(rel_path)))
        .collect();
    if active.is_empty() {
        return Vec::new();
    }

    let scan = scan(source);
    let lines: Vec<&str> = source.lines().collect();
    let excerpt = |line: u32| -> String {
        lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    };

    // Resolve each allow comment to the code line it governs: its own line
    // when trailing, otherwise the next line carrying code.
    let mut allow_map: BTreeMap<(u32, Rule), String> = BTreeMap::new();
    for site in &scan.allows {
        let target = if site.trailing {
            Some(site.line)
        } else {
            scan.code_lines.range(site.line + 1..).next().copied()
        };
        let Some(target) = target else { continue };
        for rule_name in &site.rules {
            let Some(rule) = Rule::from_name(rule_name) else {
                continue;
            };
            // An allow without a reason does not suppress: the recorded
            // justification is the point of the escape hatch.
            if site.reason.is_empty() {
                continue;
            }
            allow_map.insert((target, rule), site.reason.clone());
        }
    }

    let mut findings = Vec::new();
    let mut emit = |rule: Rule, line: u32| {
        findings.push(Finding {
            rule,
            path: rel_path.to_string(),
            line,
            excerpt: excerpt(line),
            allowed: allow_map.get(&(line, rule)).cloned(),
        });
    };

    let toks = &scan.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.in_test {
            continue;
        }
        for &rule in &active {
            match rule {
                Rule::DetMap => {
                    if t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
                        emit(rule, t.line);
                    }
                }
                Rule::DetClock => {
                    if t.kind == TokKind::Ident && t.text == "SystemTime" {
                        emit(rule, t.line);
                    }
                    if t.kind == TokKind::Ident
                        && t.text == "Instant"
                        && matches_seq(toks, i + 1, &["::", "now"])
                    {
                        emit(rule, t.line);
                    }
                }
                Rule::WirePanic => {
                    if t.kind == TokKind::Ident
                        && (t.text == "unwrap" || t.text == "expect")
                        && prev_punct(toks, i) == Some('.')
                    {
                        emit(rule, t.line);
                    }
                    if t.kind == TokKind::Ident
                        && matches!(
                            t.text.as_str(),
                            "panic" | "unreachable" | "todo" | "unimplemented"
                        )
                        && next_punct(toks, i) == Some('!')
                    {
                        emit(rule, t.line);
                    }
                    // Unchecked indexing: `[` as a postfix operator — the
                    // previous token ends an expression. `#[…]` attributes,
                    // array literals and slice types don't match.
                    if t.kind == TokKind::Punct('[') && i > 0 {
                        let prev = &toks[i - 1];
                        let postfix = matches!(prev.kind, TokKind::Ident | TokKind::Number)
                            || matches!(prev.kind, TokKind::Punct(')') | TokKind::Punct(']'));
                        // `ident[` where ident is a macro name (`vec![…]`)
                        // would need a `!` between — which tokenizes as
                        // Punct('!'), so `prev` is not an Ident there.
                        if postfix {
                            emit(rule, t.line);
                        }
                    }
                }
                Rule::WireCast => {
                    if t.kind == TokKind::Ident
                        && t.text == "as"
                        && toks.get(i + 1).is_some_and(|n| {
                            n.kind == TokKind::Ident
                                && matches!(n.text.as_str(), "u8" | "u16" | "u32")
                        })
                        && lookback_has_length_ident(toks, i)
                    {
                        emit(rule, t.line);
                    }
                }
                Rule::SafetyComment => {
                    if t.kind == TokKind::Ident && t.text == "unsafe" {
                        let documented = (t.line.saturating_sub(3)..=t.line)
                            .any(|l| scan.safety_lines.contains(&l));
                        if !documented {
                            emit(rule, t.line);
                        }
                    }
                }
            }
        }
    }
    // Two hits on one line (e.g. `buf[0], buf[1]`) are one finding: the
    // unit of fixing/annotating is the line.
    findings.dedup_by(|a, b| a.rule == b.rule && a.line == b.line);
    findings
}

/// True when one of the 8 tokens before `i` is a length/count identifier —
/// the honest token-level approximation of "this cast truncates a wire
/// length/count field".
fn lookback_has_length_ident(toks: &[Token], i: usize) -> bool {
    let start = i.saturating_sub(8);
    toks[start..i].iter().any(|t| {
        t.kind == TokKind::Ident
            && matches!(
                t.text.as_str(),
                "len" | "count" | "length" | "size" | "remaining"
            )
    })
}

fn prev_punct(toks: &[Token], i: usize) -> Option<char> {
    match toks.get(i.wrapping_sub(1))?.kind {
        TokKind::Punct(c) => Some(c),
        _ => None,
    }
}

fn next_punct(toks: &[Token], i: usize) -> Option<char> {
    match toks.get(i + 1)?.kind {
        TokKind::Punct(c) => Some(c),
        _ => None,
    }
}

/// True when tokens starting at `i` spell the given sequence, where each
/// element is either a punctuation string (matched char by char) or an
/// identifier.
fn matches_seq(toks: &[Token], mut i: usize, seq: &[&str]) -> bool {
    for want in seq {
        if want.chars().all(|c| !c.is_alphanumeric()) {
            for c in want.chars() {
                match toks.get(i) {
                    Some(t) if t.kind == TokKind::Punct(c) => i += 1,
                    _ => return false,
                }
            }
        } else {
            match toks.get(i) {
                Some(t) if t.kind == TokKind::Ident && t.text == *want => i += 1,
                _ => return false,
            }
        }
    }
    true
}
