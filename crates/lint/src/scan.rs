//! A small hand-rolled Rust token scanner.
//!
//! This is deliberately *not* a parser: the container has no crates.io
//! access, so there is no `syn`, and the rules this crate enforces are
//! honest about being line/token-level checks. The scanner's one job is to
//! never report a token that the compiler would not see — everything
//! inside comments, string/char/byte literals and doc text is stripped —
//! and to carry just enough structure for the rules:
//!
//! * identifier and punctuation tokens with 1-based line numbers;
//! * which tokens sit inside `#[cfg(test)]` items (skipped by every rule);
//! * `// lint:allow(<rule>, …) <reason>` escape-hatch comments;
//! * lines carrying a `// SAFETY:` comment (for the `safety-comment` rule).
//!
//! Known, accepted limits of the token-level approach: it does not resolve
//! paths (a local type named `HashMap` is flagged like the std one), and
//! `lint:allow` / `SAFETY:` markers are only recognized in line comments,
//! not block comments.

use std::collections::BTreeSet;

/// What a token is, at the granularity the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers, without the `r#`).
    Ident,
    /// Numeric literal (kept as one token so look-back windows count it
    /// as a single expression atom).
    Number,
    /// A lifetime such as `'a` (text excludes the quote).
    Lifetime,
    /// One punctuation character.
    Punct(char),
}

/// One scanned token.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// Inside a `#[cfg(test)]` item (test modules/functions); rules skip
    /// these tokens.
    pub in_test: bool,
}

/// One `// lint:allow(<rules>) <reason>` comment.
#[derive(Debug, Clone)]
pub struct AllowSite {
    /// Line the comment sits on.
    pub line: u32,
    /// Rule names inside the parentheses, as written.
    pub rules: Vec<String>,
    /// Free-text justification after the closing parenthesis.
    pub reason: String,
    /// True when the comment trails code on the same line (applies to that
    /// line); false when it stands alone (applies to the next code line).
    pub trailing: bool,
}

/// Scanner output for one file.
#[derive(Debug, Default)]
pub struct Scan {
    pub tokens: Vec<Token>,
    pub allows: Vec<AllowSite>,
    /// Lines whose trailing/standalone line comment contains `SAFETY:`.
    pub safety_lines: BTreeSet<u32>,
    /// Lines carrying at least one token (code lines).
    pub code_lines: BTreeSet<u32>,
}

/// Scans `source` into tokens plus the comment-borne metadata above.
pub fn scan(source: &str) -> Scan {
    let bytes = source.as_bytes();
    let mut out = Scan::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    // Whether a token has been emitted on the current line (decides if a
    // lint:allow comment is trailing or standalone).
    let mut code_on_line = false;

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                code_on_line = false;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                let text = &source[start..i];
                parse_line_comment(text, line, code_on_line, &mut out);
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Block comment, nested like Rust's.
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        code_on_line = false;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                i = skip_string(bytes, i, &mut line);
                code_on_line = true;
            }
            b'\'' => {
                // Lifetime or char literal. `'a` followed by anything but a
                // closing quote is a lifetime; everything else is a char.
                let next = bytes.get(i + 1).copied();
                let after = bytes.get(i + 2).copied();
                let is_lifetime = matches!(next, Some(n) if n == b'_' || n.is_ascii_alphabetic())
                    && after != Some(b'\'');
                if is_lifetime {
                    let start = i + 1;
                    i += 1;
                    while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric())
                    {
                        i += 1;
                    }
                    push(
                        &mut out,
                        TokKind::Lifetime,
                        &source[start..i],
                        line,
                        &mut code_on_line,
                    );
                } else {
                    i = skip_char_literal(bytes, i, &mut line);
                    code_on_line = true;
                }
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                let start = i;
                while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                let ident = &source[start..i];
                // String-literal prefixes: `r"…"`, `r#"…"#`, `b"…"`,
                // `br#"…"#`, `c"…"`. A bare `r#ident` is a raw identifier.
                match ident {
                    "r" | "b" | "br" | "c" | "cr" => {
                        if bytes.get(i) == Some(&b'"') {
                            i = skip_string(bytes, i, &mut line);
                            code_on_line = true;
                            continue;
                        }
                        if bytes.get(i) == Some(&b'#') {
                            let mut j = i;
                            while bytes.get(j) == Some(&b'#') {
                                j += 1;
                            }
                            if bytes.get(j) == Some(&b'"') {
                                i = skip_raw_string(bytes, i, &mut line);
                                code_on_line = true;
                                continue;
                            }
                            if ident == "r" || ident == "br" {
                                // Raw identifier `r#foo`: emit `foo`.
                                let start = j;
                                i = j;
                                while i < bytes.len()
                                    && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric())
                                {
                                    i += 1;
                                }
                                push(
                                    &mut out,
                                    TokKind::Ident,
                                    &source[start..i],
                                    line,
                                    &mut code_on_line,
                                );
                                continue;
                            }
                        }
                        if ident == "b" && bytes.get(i) == Some(&b'\'') {
                            i = skip_char_literal(bytes, i, &mut line);
                            code_on_line = true;
                            continue;
                        }
                        push(&mut out, TokKind::Ident, ident, line, &mut code_on_line);
                    }
                    _ => push(&mut out, TokKind::Ident, ident, line, &mut code_on_line),
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                i += 1;
                while i < bytes.len() {
                    let b = bytes[i];
                    if b == b'_' || b.is_ascii_alphanumeric() {
                        i += 1;
                    } else if b == b'.'
                        && bytes.get(i + 1).is_some_and(|n| n.is_ascii_digit())
                        && !source[start..i].contains('.')
                    {
                        // One decimal point, only when a digit follows — so
                        // `0..n` stays a range, not part of the number.
                        i += 1;
                    } else {
                        break;
                    }
                }
                push(
                    &mut out,
                    TokKind::Number,
                    &source[start..i],
                    line,
                    &mut code_on_line,
                );
            }
            _ => {
                // One punctuation character (multi-byte UTF-8 can only
                // appear inside literals/comments in valid Rust, but skip
                // the full code point defensively).
                let ch = source[i..].chars().next().unwrap_or('\u{fffd}');
                push_char(&mut out, ch, line, &mut code_on_line);
                i += ch.len_utf8();
            }
        }
    }
    mark_cfg_test_items(&mut out.tokens);
    out
}

fn push(out: &mut Scan, kind: TokKind, text: &str, line: u32, code_on_line: &mut bool) {
    out.tokens.push(Token {
        kind,
        text: text.to_string(),
        line,
        in_test: false,
    });
    out.code_lines.insert(line);
    *code_on_line = true;
}

fn push_char(out: &mut Scan, ch: char, line: u32, code_on_line: &mut bool) {
    out.tokens.push(Token {
        kind: TokKind::Punct(ch),
        text: ch.to_string(),
        line,
        in_test: false,
    });
    out.code_lines.insert(line);
    *code_on_line = true;
}

/// Consumes a `"…"` literal starting at the `"` (or at a `b`/`r` prefix
/// already consumed by the caller when `bytes[i] == b'"'`). Handles `\`
/// escapes; returns the index after the closing quote.
fn skip_string(bytes: &[u8], mut i: usize, line: &mut u32) -> usize {
    debug_assert_eq!(bytes[i], b'"');
    i += 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Consumes a raw string starting at the first `#` (prefix ident already
/// consumed): `#…#"…"#…#`. No escapes; closes on `"` followed by the same
/// number of hashes.
fn skip_raw_string(bytes: &[u8], mut i: usize, line: &mut u32) -> usize {
    let mut hashes = 0usize;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    debug_assert_eq!(bytes.get(i), Some(&b'"'));
    i += 1;
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            *line += 1;
            i += 1;
            continue;
        }
        if bytes[i] == b'"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while seen < hashes && bytes.get(j) == Some(&b'#') {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return j;
            }
        }
        i += 1;
    }
    i
}

/// Consumes a `'…'` char literal starting at the `'`.
fn skip_char_literal(bytes: &[u8], mut i: usize, line: &mut u32) -> usize {
    debug_assert_eq!(bytes[i], b'\'');
    i += 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'\'' => return i + 1,
            b'\n' => {
                // Malformed literal; stop at the line break rather than
                // swallowing the rest of the file.
                *line += 1;
                return i + 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Parses one line comment: `lint:allow(...)` escape hatches and `SAFETY:`
/// markers. Everything else is dropped.
fn parse_line_comment(text: &str, line: u32, code_on_line: bool, out: &mut Scan) {
    let body = text.trim_start_matches('/').trim();
    if body.contains("SAFETY:") {
        out.safety_lines.insert(line);
    }
    let Some(rest) = body.strip_prefix("lint:allow(") else {
        return;
    };
    let Some(close) = rest.find(')') else {
        return;
    };
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    let reason = rest[close + 1..].trim().to_string();
    out.allows.push(AllowSite {
        line,
        rules,
        reason,
        trailing: code_on_line,
    });
}

/// Marks every token belonging to a `#[cfg(test)]` item. Token-level
/// approximation of item scope: after a `#[cfg(test)]` (or `#[test]`)
/// attribute, skip any further attributes, then mark up to the end of the
/// next brace-balanced block — or up to a top-level `;` for a block-less
/// item such as an annotated `use`.
fn mark_cfg_test_items(tokens: &mut [Token]) {
    let mut i = 0usize;
    while i < tokens.len() {
        let Some(attr_end) = match_test_attribute(tokens, i) else {
            i += 1;
            continue;
        };
        // Skip stacked attributes between the cfg(test) and the item.
        let mut j = attr_end;
        while j < tokens.len() && tokens[j].kind == TokKind::Punct('#') {
            j = skip_attribute(tokens, j);
        }
        // Find the item's extent: matching `{…}` or terminating `;`.
        let mut depth = 0usize;
        let mut k = j;
        while k < tokens.len() {
            match tokens[k].kind {
                TokKind::Punct('{') => depth += 1,
                TokKind::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        k += 1;
                        break;
                    }
                }
                TokKind::Punct(';') if depth == 0 => {
                    k += 1;
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        for t in &mut tokens[i..k] {
            t.in_test = true;
        }
        i = k;
    }
}

/// If `tokens[i..]` starts a `#[cfg(test)]`/`#[cfg(any(test, …))]`/`#[test]`
/// attribute, returns the index one past its closing `]`.
fn match_test_attribute(tokens: &[Token], i: usize) -> Option<usize> {
    if tokens.get(i)?.kind != TokKind::Punct('#') {
        return None;
    }
    if tokens.get(i + 1)?.kind != TokKind::Punct('[') {
        return None;
    }
    let end = skip_attribute(tokens, i);
    let inner = &tokens[i + 2..end.saturating_sub(1)];
    let is_test = match inner.first().map(|t| t.text.as_str()) {
        Some("test") if inner.len() == 1 => true,
        // `cfg(test)` / `cfg(any(test, …))`, but never `cfg(not(test))`.
        Some("cfg") => {
            inner.iter().any(|t| t.text == "test") && !inner.iter().any(|t| t.text == "not")
        }
        _ => false,
    };
    is_test.then_some(end)
}

/// Returns the index one past the `]` closing the attribute starting at
/// `tokens[i]` (which must be `#`).
fn skip_attribute(tokens: &[Token], i: usize) -> usize {
    let mut depth = 0usize;
    let mut j = i + 1;
    while j < tokens.len() {
        match tokens[j].kind {
            TokKind::Punct('[') => depth += 1,
            TokKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}
