//! CLI for `whatsup-lint`. See the library docs for the rule set.
//!
//! ```text
//! cargo run -p whatsup-lint                  # full report, exit 0
//! cargo run -p whatsup-lint -- --check      # CI gate: exit 1 on violations
//! cargo run -p whatsup-lint -- --format json
//! cargo run -p whatsup-lint -- --root /path/to/workspace
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use whatsup_lint::{lint_workspace, Config};

fn main() -> ExitCode {
    let mut check = false;
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--format" => match args.next().as_deref() {
                Some("json") => json = true,
                Some("text") => json = false,
                other => {
                    eprintln!(
                        "whatsup-lint: --format expects `json` or `text`, got {:?}",
                        other.unwrap_or("nothing")
                    );
                    return ExitCode::from(2);
                }
            },
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("whatsup-lint: --root expects a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "whatsup-lint — determinism & wire-safety static checks\n\n\
                     USAGE: whatsup-lint [--check] [--format json|text] [--root PATH]\n\n\
                     --check   exit non-zero when any unannotated violation exists\n\
                     --format  output format (default: text)\n\
                     --root    workspace root (default: this crate's workspace)"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("whatsup-lint: unknown argument {other:?} (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    // Default root: the workspace this binary was built from, so
    // `cargo run -p whatsup-lint` works from any CWD.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .unwrap_or_else(|_| PathBuf::from("."))
    });

    let config = Config::workspace_default();
    let report = match lint_workspace(&root, &config) {
        Ok(r) => r,
        Err(err) => {
            eprintln!("whatsup-lint: {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };

    if json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }

    if check && !report.violations.is_empty() {
        eprintln!(
            "whatsup-lint: {} unannotated violation(s); fix or annotate with \
             `// lint:allow(<rule>) <reason>`",
            report.violations.len()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
