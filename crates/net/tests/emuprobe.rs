//! Fig. 8a's core claim, as an integration check: the three testbeds —
//! simulation, emulated cluster, real (UDP) deployment — agree on delivery
//! quality when no losses are injected, because they run the same protocol
//! implementation.

use whatsup_core::Params;
use whatsup_datasets::{survey, SurveyConfig};
use whatsup_net::emulator::{self, EmulatorConfig};
use whatsup_net::runtime::{self, UdpConfig};
use whatsup_net::swarm::SwarmConfig;

#[test]
fn emulator_and_udp_agree() {
    let d = survey::generate(&SurveyConfig::paper().scaled(0.12), 17);
    let swarm = SwarmConfig {
        params: Params::whatsup(5),
        cycles: 14,
        cycle_ms: 80,
        publish_from: 2,
        measure_from: 5,
        drain_cycles: 2,
        ..Default::default()
    };
    let emu = emulator::run(
        &d,
        &EmulatorConfig {
            swarm: swarm.clone(),
            latency_ms: (1, 4),
            link_loss: 0.0,
        },
    );
    let udp = runtime::run(&d, &UdpConfig { swarm });
    let (es, us) = (emu.scores(), udp.scores());
    assert!(es.recall > 0.5, "emulator starved: {es:?}");
    assert!(us.recall > 0.5, "udp starved: {us:?}");
    assert!(
        (es.f1 - us.f1).abs() < 0.15,
        "testbeds disagree: emulator {es:?} vs udp {us:?}"
    );
    // Both testbeds account traffic per protocol family.
    assert!(emu.traffic.news_bytes > 0 && emu.traffic.rps_bytes > 0);
    assert!(udp.traffic.news_bytes > 0 && udp.traffic.wup_bytes > 0);
}
