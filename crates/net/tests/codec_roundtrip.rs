//! Roundtrip property tests for every wire-format frame: gossip (all four
//! kinds), news, and the shard-exchange mailbox bundles.
//!
//! The simulator's determinism across shard counts leans on the codec
//! being lossless for everything node behavior depends on — profile
//! entries and scores bit-exact, descriptor order preserved, item ids
//! recomputed from identical content — so these properties are
//! load-bearing, not just hygiene.

use proptest::prelude::*;
use whatsup_core::message::wire;
use whatsup_core::{
    Descriptor, NewsItem, NewsMessage, NodeId, Payload, Profile, ProfileEntry, SharedProfile,
};
use whatsup_net::codec::{
    bundle_view, decode, decode_bundle_entry, decode_delta, decode_digest, encode, encode_bundle,
    encode_delta, encode_digest, DeltaEntry, DeltaValue, DigestLine, NewsDecodeCache, WireMessage,
    ANTI_ENTROPY_HEADER_BYTES,
};

/// Builds a profile from generated `(item, timestamp, liked)` triples.
/// `from_entries` dedupes by item id, so the roundtrip comparison runs on
/// the canonical form.
fn profile(entries: &[(u64, u32, bool)]) -> Profile {
    Profile::from_entries(
        entries
            .iter()
            .map(|&(item, timestamp, liked)| ProfileEntry {
                item,
                timestamp,
                score: if liked { 1.0 } else { 0.0 },
            }),
    )
}

/// `(node, age, profile entries)` of one generated descriptor.
type DescriptorSpec = (u32, u32, Vec<(u64, u32, bool)>);

fn descriptors(specs: &[DescriptorSpec]) -> Vec<Descriptor<SharedProfile>> {
    specs
        .iter()
        .map(|(node, age, entries)| Descriptor {
            node: *node,
            age: *age,
            payload: SharedProfile::new(profile(entries)),
        })
        .collect()
}

fn news_item(title: u64, desc: u64, source: u32, created: u32) -> NewsItem {
    NewsItem::new(
        format!("title-{title}"),
        format!("description {desc}"),
        format!("https://news.example/{title}/{desc}"),
        source,
        created,
    )
}

fn gossip_payload(kind: u8, descs: Vec<Descriptor<SharedProfile>>) -> Payload {
    match kind {
        wire::RPS_REQUEST => Payload::RpsRequest(descs),
        wire::RPS_RESPONSE => Payload::RpsResponse(descs),
        wire::WUP_REQUEST => Payload::WupRequest(descs),
        _ => Payload::WupResponse(descs),
    }
}

fn news_payload(item: &NewsItem, entries: &[(u64, u32, bool)], dislikes: u8, hops: u16) -> Payload {
    Payload::News(NewsMessage {
        header: item.header(),
        profile: SharedProfile::new(profile(entries)),
        dislikes,
        hops,
    })
}

fn profile_strategy() -> impl Strategy<Value = Vec<(u64, u32, bool)>> {
    prop::collection::vec((0u64..1_000_000, 0u32..10_000, prop::bool::ANY), 0..20)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every gossip kind roundtrips to an equal payload from the same
    /// sender.
    #[test]
    fn gossip_frames_roundtrip(
        from in 0u32..1_000_000,
        kind in 1u8..5,
        specs in prop::collection::vec(
            (0u32..100_000, 0u32..1_000, profile_strategy()),
            0..8,
        ),
    ) {
        let payload = gossip_payload(kind, descriptors(&specs));
        let frame = encode(from, &payload, |_| None).unwrap();
        prop_assert_eq!(frame[0], payload.wire_id(), "tag is the stable wire id");
        let (decoded_from, wire) = decode(&frame).unwrap();
        prop_assert_eq!(decoded_from, from);
        prop_assert_eq!(wire.try_into_payload().unwrap(), payload);
    }

    /// News frames roundtrip with the id recomputed from content.
    #[test]
    fn news_frames_roundtrip(
        from in 0u32..1_000_000,
        title in 0u64..1_000_000,
        desc in 0u64..1_000_000,
        source in 0u32..100_000,
        created in 0u32..10_000,
        entries in profile_strategy(),
        dislikes in 0u8..255,
        hops in 0u16..2_000,
    ) {
        let item = news_item(title, desc, source, created);
        let payload = news_payload(&item, &entries, dislikes, hops);
        let content = item.clone();
        let frame = encode(from, &payload, move |id| {
            assert_eq!(id, content.id());
            Some(content.clone())
        })
        .unwrap();
        prop_assert_eq!(frame[0], wire::NEWS);
        let (decoded_from, wire) = decode(&frame).unwrap();
        prop_assert_eq!(decoded_from, from);
        // The decoded wire form carries the full item; the payload view
        // recomputes the id from that content.
        if let WireMessage::News { item: decoded_item, .. } = &wire {
            prop_assert_eq!(decoded_item, &item);
        } else {
            prop_assert!(false, "expected a news frame");
        }
        prop_assert_eq!(wire.try_into_payload().unwrap(), payload);
    }

    /// Mailbox bundles roundtrip entry-exact: addressing, order, and every
    /// embedded message (news content included).
    #[test]
    fn bundle_frames_roundtrip(
        shard in 0u32..64,
        entry_specs in prop::collection::vec(
            (
                (0u32..100_000, 0u32..100_000),
                (0u64..1_000, 0u32..1_000, 0u32..500),
                profile_strategy(),
                (1u8..6, 0u8..255, 0u16..100),
            ),
            0..12,
        ),
    ) {
        let mut items: std::collections::HashMap<u64, NewsItem> = Default::default();
        let mut entries: Vec<(NodeId, NodeId, Payload)> = Vec::new();
        for ((to, from), (title, source, created), prof, (kind, dislikes, hops)) in &entry_specs {
            let payload = if *kind == wire::NEWS {
                let item = news_item(*title, 1, *source, *created);
                items.insert(item.id(), item.clone());
                news_payload(&item, prof, *dislikes, *hops)
            } else {
                gossip_payload(*kind, descriptors(&[(*from, 3, prof.clone())]))
            };
            entries.push((*to, *from, payload));
        }
        let frame = encode_bundle(shard, &entries, |id| items.get(&id).cloned());
        prop_assert_eq!(frame[0], wire::MAILBOX_BUNDLE);
        let (decoded_shard, wire) = decode(&frame).unwrap();
        prop_assert_eq!(decoded_shard, shard);
        let WireMessage::Bundle(decoded) = wire else {
            panic!("expected a bundle frame");
        };
        prop_assert_eq!(decoded.len(), entries.len());
        for (got, (to, from, payload)) in decoded.into_iter().zip(entries) {
            prop_assert_eq!(got.to, to);
            prop_assert_eq!(got.from, from);
            prop_assert_eq!(got.message.try_into_payload().unwrap(), payload);
        }
    }

    /// The zero-copy bundle path (`bundle_view` + `decode_bundle_entry`
    /// with its per-bundle news cache) must be invisible: over bundles
    /// mixing every wire variant — drawn from small item/profile pools so
    /// fan-out-style repetition drives the cache hit paths — it yields
    /// exactly the entries the plain `decode` path yields, registers every
    /// distinct news content (and nothing else), and the decoded entries
    /// re-encode to the original frame byte-for-byte.
    #[test]
    fn zero_copy_bundle_decode_is_byte_exact(
        shard in 0u32..64,
        item_pool in prop::collection::vec((0u64..1_000, 0u32..1_000, 0u32..500), 1..3),
        profile_pool in prop::collection::vec(profile_strategy(), 1..3),
        picks in prop::collection::vec(
            (
                (0u8..6, 0usize..8, 0usize..8),
                (0u32..100_000, 0u32..100_000),
                (0u8..255, 0u16..100),
            ),
            0..16,
        ),
    ) {
        let item_vec: Vec<NewsItem> = item_pool
            .iter()
            .enumerate()
            .map(|(i, &(title, source, created))| news_item(title, i as u64, source, created))
            .collect();
        let items: std::collections::HashMap<u64, NewsItem> =
            item_vec.iter().map(|i| (i.id(), i.clone())).collect();
        let mut entries: Vec<(NodeId, NodeId, Payload)> = Vec::new();
        for ((kind, item_ix, prof_ix), (to, from), (dislikes, hops)) in &picks {
            let prof = &profile_pool[prof_ix % profile_pool.len()];
            // Tags 1–4 are the gossip kinds; 0 and 5 both map to news so
            // consecutive news entries (the cache's hit case) are common.
            let payload = if *kind == 0 || *kind == wire::NEWS {
                let item = &item_vec[item_ix % item_vec.len()];
                news_payload(item, prof, *dislikes, *hops)
            } else {
                gossip_payload(*kind, descriptors(&[(*from, 3, prof.clone())]))
            };
            entries.push((*to, *from, payload));
        }
        let frame = encode_bundle(shard, &entries, |id| items.get(&id).cloned());

        // Reference: the materializing decode path.
        let (decoded_shard, wire_msg) = decode(&frame).unwrap();
        prop_assert_eq!(decoded_shard, shard);
        let WireMessage::Bundle(plain) = wire_msg else {
            panic!("expected a bundle frame");
        };
        let plain: Vec<(NodeId, NodeId, Payload)> = plain
            .into_iter()
            .map(|e| (e.to, e.from, e.message.try_into_payload().unwrap()))
            .collect();

        // Zero-copy path, through the shared per-bundle news cache.
        let view = bundle_view(&frame).unwrap();
        prop_assert_eq!(view.from_shard(), shard);
        let mut cache = NewsDecodeCache::default();
        let mut streamed: Vec<(NodeId, NodeId, Payload)> = Vec::new();
        let mut registered: Vec<NewsItem> = Vec::new();
        for entry in view {
            let (to, inner) = entry.unwrap();
            let (from, payload, fresh) = decode_bundle_entry(inner, &mut cache).unwrap();
            if let Some(item) = fresh {
                registered.push(item);
            }
            streamed.push((to, from, payload));
        }
        prop_assert_eq!(&streamed, &plain, "zero-copy path must match plain decode");
        prop_assert_eq!(&streamed, &entries, "decode must invert encode");

        // Every distinct news content surfaced as fresh at least once (so
        // the receiving shard can register it), every fresh item is a real
        // bundle item, and a cache hit never yields a stale header.
        let registered_ids: std::collections::BTreeSet<u64> =
            registered.iter().map(|i| i.id()).collect();
        let expected_ids: std::collections::BTreeSet<u64> = entries
            .iter()
            .filter_map(|(_, _, p)| match p {
                Payload::News(m) => Some(m.header.id),
                _ => None,
            })
            .collect();
        prop_assert_eq!(registered_ids, expected_ids);
        for item in &registered {
            prop_assert_eq!(Some(item), items.get(&item.id()).as_ref().copied());
        }

        // Byte-for-byte: re-encoding what the zero-copy path decoded
        // reproduces the original frame exactly.
        let reencoded = encode_bundle(shard, &streamed, |id| items.get(&id).cloned());
        prop_assert_eq!(&reencoded[..], &frame[..], "re-encode must be byte-identical");
    }

    /// Truncating any frame at any point is a decode error, never a panic
    /// or a silently short message.
    #[test]
    fn truncated_frames_never_decode(
        from in 0u32..1_000,
        specs in prop::collection::vec(
            (0u32..1_000, 0u32..100, profile_strategy()),
            1..4,
        ),
        cut_fraction in 0.0f64..1.0,
    ) {
        let payload = gossip_payload(wire::WUP_REQUEST, descriptors(&specs));
        let single = encode(from, &payload, |_| None).unwrap();
        let entries = vec![(9u32, from, payload)];
        let bundle = encode_bundle(0, &entries, |_| None);
        for frame in [&single[..], &bundle[..]] {
            let cut = ((frame.len() as f64) * cut_fraction) as usize;
            if cut < frame.len() {
                prop_assert!(decode(&frame[..cut]).is_err(), "cut at {} must fail", cut);
            }
        }
    }
}

/// Derives a [`DeltaValue`] from two generated numbers: `pick` chooses the
/// variant, `raw` the payload (tuples cap at four elements in the
/// strategy set, so the variant is folded into the scalars).
fn delta_value(pick: u8, raw: u64) -> DeltaValue {
    match pick % 3 {
        0 => DeltaValue::Heartbeat(raw as u32),
        1 => DeltaValue::ProfileDigest(raw),
        _ => DeltaValue::NewsKey {
            item: raw as u32,
            published_at: (raw >> 32) as u32,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Anti-entropy digests roundtrip line-for-line in order.
    #[test]
    fn digest_frames_roundtrip(
        from in 0u32..1_000_000,
        lines in prop::collection::vec(
            (0u32..100_000, 0u32..1_000, 0u64..1_000_000),
            0..32,
        ),
    ) {
        let lines: Vec<DigestLine> = lines
            .iter()
            .map(|&(node, incarnation, max_version)| DigestLine {
                node,
                incarnation,
                max_version,
            })
            .collect();
        let frame = encode_digest(from, &lines).unwrap();
        prop_assert_eq!(frame[0], wire::DIGEST);
        let (decoded_from, decoded) = decode_digest(&frame).unwrap();
        prop_assert_eq!(decoded_from, from);
        prop_assert_eq!(decoded, lines);
    }

    /// Anti-entropy deltas roundtrip for every value kind, and the
    /// per-entry `wire_bytes` sizing adds up to the exact frame length —
    /// the invariant budget packing depends on.
    #[test]
    fn delta_frames_roundtrip_and_size_exactly(
        from in 0u32..1_000_000,
        raw_entries in prop::collection::vec(
            (0u32..100_000, 0u64..1_000_000, (0u8..6, 0u64..u64::MAX)),
            0..32,
        ),
    ) {
        let entries: Vec<DeltaEntry> = raw_entries
            .iter()
            .map(|&(node, version, (pick, raw))| DeltaEntry {
                node,
                incarnation: u32::from(pick),
                version,
                value: delta_value(pick, raw),
            })
            .collect();
        let frame = encode_delta(from, &entries).unwrap();
        prop_assert_eq!(frame[0], wire::DELTA);
        let sized: usize = ANTI_ENTROPY_HEADER_BYTES
            + entries.iter().map(DeltaEntry::wire_bytes).sum::<usize>();
        prop_assert_eq!(frame.len(), sized, "wire_bytes must sum to the frame length");
        let (decoded_from, decoded) = decode_delta(&frame).unwrap();
        prop_assert_eq!(decoded_from, from);
        prop_assert_eq!(decoded, entries);
    }

    /// Truncated anti-entropy frames are decode errors, never panics.
    #[test]
    fn truncated_anti_entropy_frames_never_decode(
        from in 0u32..1_000,
        lines in prop::collection::vec(
            (0u32..1_000, 0u32..100, 0u64..1_000),
            1..8,
        ),
        cut_fraction in 0.0f64..1.0,
    ) {
        let digest_lines: Vec<DigestLine> = lines
            .iter()
            .map(|&(node, incarnation, max_version)| DigestLine {
                node,
                incarnation,
                max_version,
            })
            .collect();
        let entries: Vec<DeltaEntry> = lines
            .iter()
            .map(|&(node, incarnation, version)| DeltaEntry {
                node,
                incarnation,
                version,
                value: DeltaValue::NewsKey {
                    item: node,
                    published_at: incarnation,
                },
            })
            .collect();
        let digest_frame = encode_digest(from, &digest_lines).unwrap();
        let delta_frame = encode_delta(from, &entries).unwrap();
        let digest_cut = ((digest_frame.len() as f64) * cut_fraction) as usize;
        if digest_cut < digest_frame.len() {
            prop_assert!(decode_digest(&digest_frame[..digest_cut]).is_err());
        }
        let delta_cut = ((delta_frame.len() as f64) * cut_fraction) as usize;
        if delta_cut < delta_frame.len() {
            prop_assert!(decode_delta(&delta_frame[..delta_cut]).is_err());
        }
    }
}
