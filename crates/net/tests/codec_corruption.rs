//! Adversarial decode tests: every wire-format frame kind, corrupted by
//! truncation and bit flips, fed to every decoder — the decoder must
//! return a typed [`DecodeError`] (or a well-formed wrong message, for
//! flips that land in content bytes), **never panic**.
//!
//! This is the executable form of the `wire-panic` contract that
//! `whatsup-lint` enforces statically on `codec.rs`: untrusted bytes reach
//! `decode`/`bundle_view`/`decode_digest`/`decode_delta` from the network,
//! so every slice index on those paths must be bounds-checked. Checkpoint
//! frames are covered through their building blocks: shard checkpoints
//! (see `whatsup_sim::engine::shard`) store node state as
//! `put_profile`/`put_descriptors` spans, so corrupting those spans and
//! feeding `get_profile`/`get_descriptors` exercises exactly the parsing a
//! checkpoint restore performs (the engine's `.expect` on top is a trusted
//! -path policy choice, not a parsing path).

use proptest::prelude::*;
use whatsup_core::message::wire;
use whatsup_core::{
    Descriptor, NewsItem, NewsMessage, NodeId, Payload, Profile, ProfileEntry, SharedProfile,
};
use whatsup_net::codec::{
    bundle_view, decode, decode_bundle_entry, decode_delta, decode_digest, encode, encode_bundle,
    encode_delta, encode_digest, get_descriptors, get_profile, DeltaEntry, DeltaValue, DigestLine,
    NewsDecodeCache,
};

fn profile(entries: &[(u64, u32, bool)]) -> Profile {
    Profile::from_entries(
        entries
            .iter()
            .map(|&(item, timestamp, liked)| ProfileEntry {
                item,
                timestamp,
                score: if liked { 1.0 } else { 0.0 },
            }),
    )
}

fn descriptor(node: u32, entries: &[(u64, u32, bool)]) -> Descriptor<SharedProfile> {
    Descriptor {
        node,
        age: 3,
        payload: SharedProfile::new(profile(entries)),
    }
}

fn news_item(tag: u64, source: u32) -> NewsItem {
    NewsItem::new(
        format!("title-{tag}"),
        format!("description {tag}"),
        format!("https://news.example/{tag}"),
        source,
        7,
    )
}

fn news_payload(item: &NewsItem, entries: &[(u64, u32, bool)]) -> Payload {
    Payload::News(NewsMessage {
        header: item.header(),
        profile: SharedProfile::new(profile(entries)),
        dislikes: 2,
        hops: 5,
    })
}

/// One valid frame of every wire kind, built from the generated entries:
/// the four gossip kinds, a news frame, a mailbox bundle mixing gossip and
/// news, an anti-entropy digest and delta, and the checkpoint span
/// building blocks (a `put_profile` span and a `put_descriptors` span).
fn all_frames(from: NodeId, entries: &[(u64, u32, bool)]) -> Vec<Vec<u8>> {
    let item = news_item(entries.len() as u64, from);
    let resolve = |id| (id == item.id()).then(|| item.clone());
    let mut frames: Vec<Vec<u8>> = Vec::new();
    for kind in [
        wire::RPS_REQUEST,
        wire::RPS_RESPONSE,
        wire::WUP_REQUEST,
        wire::WUP_RESPONSE,
    ] {
        let descs = vec![descriptor(from, entries)];
        let payload = match kind {
            wire::RPS_REQUEST => Payload::RpsRequest(descs),
            wire::RPS_RESPONSE => Payload::RpsResponse(descs),
            wire::WUP_REQUEST => Payload::WupRequest(descs),
            _ => Payload::WupResponse(descs),
        };
        frames.push(encode(from, &payload, resolve).unwrap().to_vec());
    }
    frames.push(
        encode(from, &news_payload(&item, entries), resolve)
            .unwrap()
            .to_vec(),
    );
    let bundle_entries: Vec<(NodeId, NodeId, Payload)> = vec![
        (
            1,
            from,
            Payload::RpsRequest(vec![descriptor(from, entries)]),
        ),
        (2, from, news_payload(&item, entries)),
        (3, from, news_payload(&item, entries)),
    ];
    frames.push(encode_bundle(9, &bundle_entries, resolve).to_vec());
    let digest: Vec<DigestLine> = (0..3)
        .map(|i| DigestLine {
            node: i,
            incarnation: u32::from(i == 1),
            max_version: u64::from(i) * 7,
        })
        .collect();
    frames.push(encode_digest(from, &digest).unwrap().to_vec());
    let delta: Vec<DeltaEntry> = vec![
        DeltaEntry {
            node: 0,
            incarnation: 0,
            version: 1,
            value: DeltaValue::Heartbeat(4),
        },
        DeltaEntry {
            node: 1,
            incarnation: 2,
            version: 9,
            value: DeltaValue::ProfileDigest(0xdead_beef),
        },
        DeltaEntry {
            node: 2,
            incarnation: 0,
            version: 3,
            value: DeltaValue::NewsKey {
                item: 11,
                published_at: 13,
            },
        },
    ];
    frames.push(encode_delta(from, &delta).unwrap().to_vec());
    // Checkpoint span building blocks (what a shard checkpoint embeds).
    let mut buf = bytes::BytesMut::new();
    whatsup_net::codec::put_profile(&mut buf, &profile(entries));
    frames.push(buf.to_vec());
    let mut buf = bytes::BytesMut::new();
    whatsup_net::codec::put_descriptors(&mut buf, &[descriptor(from, entries)]);
    frames.push(buf.to_vec());
    frames
}

/// Feeds one byte buffer to every decode entry point. The only acceptable
/// outcomes are `Ok` or a typed error; a panic fails the test by
/// unwinding.
fn exercise_all_decoders(buf: &[u8]) {
    if let Ok((_, msg)) = decode(buf) {
        let _ = msg.try_into_payload();
    }
    if let Ok(view) = bundle_view(buf) {
        let mut cache = NewsDecodeCache::default();
        for entry in view {
            let Ok((_, inner)) = entry else { break };
            let _ = decode_bundle_entry(inner, &mut cache);
        }
    }
    let _ = decode_digest(buf);
    let _ = decode_delta(buf);
    let mut cursor = buf;
    let _ = get_profile(&mut cursor);
    let mut cursor = buf;
    let _ = get_descriptors(&mut cursor);
}

fn profile_strategy() -> impl Strategy<Value = Vec<(u64, u32, bool)>> {
    prop::collection::vec((0u64..1_000_000, 0u32..10_000, prop::bool::ANY), 0..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Truncations of every frame kind: each decoder either rejects the
    /// prefix with a typed error or parses a shorter valid message — and
    /// the frame's own decoder must reject any strict prefix.
    #[test]
    fn truncated_frames_never_panic(
        from in 0u32..1_000,
        entries in profile_strategy(),
        cut_fraction in 0.0f64..1.0,
    ) {
        for frame in all_frames(from, &entries) {
            let cut = ((frame.len() as f64) * cut_fraction) as usize;
            if cut < frame.len() {
                exercise_all_decoders(&frame[..cut]);
            }
        }
    }

    /// Bit-flipped frames of every kind never panic any decoder. A flip in
    /// a content byte may still decode (to different content) — the
    /// contract is no panic, not rejection.
    #[test]
    fn bit_flipped_frames_never_panic(
        from in 0u32..1_000,
        entries in profile_strategy(),
        flips in prop::collection::vec((0usize..10_000, 0u8..8), 1..6),
    ) {
        for frame in all_frames(from, &entries) {
            let mut corrupt = frame.clone();
            for &(pos, bit) in &flips {
                let at = pos % corrupt.len();
                corrupt[at] ^= 1 << bit;
            }
            exercise_all_decoders(&corrupt);
        }
    }

    /// Arbitrary byte soup — no structure at all — never panics.
    #[test]
    fn random_bytes_never_panic(noise in prop::collection::vec(0u8..255, 0..256)) {
        exercise_all_decoders(&noise);
    }
}

/// Exhaustive (non-sampled) corruption of one small frame per kind: every
/// strict prefix, and every single-bit flip of every byte. Deterministic,
/// so a regression names the exact frame kind and offset on failure.
#[test]
fn every_prefix_and_single_bit_flip_is_panic_free() {
    let entries = [(42u64, 9u32, true), (7u64, 3u32, false)];
    let frames = all_frames(5, &entries);
    // The last two buffers are checkpoint *spans* (no tag byte), so the
    // strict-prefix rejection contract below applies to the tagged frames
    // only; the spans still get the full no-panic treatment.
    let tagged = frames.len() - 2;
    for (frame_ix, frame) in frames.into_iter().enumerate() {
        for cut in 0..frame.len() {
            exercise_all_decoders(&frame[..cut]);
        }
        // A strict prefix must never satisfy the full-frame decoders: the
        // wire format carries explicit counts/lengths, so short input is
        // always a typed error, not a silently short message.
        for cut in 0..frame.len() {
            let prefix = &frame[..cut];
            if frame_ix < tagged {
                assert!(
                    decode(prefix).is_err(),
                    "frame {frame_ix}: decode accepted a {cut}-byte prefix of {} bytes",
                    frame.len()
                );
            }
            if frame[0] == wire::DIGEST {
                assert!(decode_digest(prefix).is_err());
            }
            if frame[0] == wire::DELTA {
                assert!(decode_delta(prefix).is_err());
            }
        }
        for at in 0..frame.len() {
            for bit in 0..8 {
                let mut corrupt = frame.clone();
                corrupt[at] ^= 1 << bit;
                exercise_all_decoders(&corrupt);
            }
        }
    }
}
