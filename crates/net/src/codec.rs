//! Binary wire format.
//!
//! Layout (little-endian throughout; tags are the stable wire ids of
//! [`whatsup_core::message::wire`]):
//!
//! ```text
//! frame      := tag:u8 from:u32 body
//! gossip     := count:u16 descriptor*
//! descriptor := node:u32 age:u32 profile
//! profile    := len:u16 entry*
//! entry      := item:u64 timestamp:u32 score:f32
//! news       := source:u32 created:u32 title:str desc:str link:str
//!               dislikes:u8 hops:u16 profile
//! str        := len:u16 utf8-bytes
//! bundle     := count:u32 (to:u32 len:u32 frame)*       [from = shard id]
//! ```
//!
//! The news item's 8-byte id is deliberately absent from the wire: receivers
//! recompute it from the content (paper §II-A), and [`decode`] does exactly
//! that when rebuilding the in-memory [`NewsMessage`].
//!
//! Mailbox bundles are the simulator's shard-exchange unit: a batch of
//! addressed single-message frames, concatenated in `(sender, emission
//! order)` order by the emitting shard. Bundles travel over pipes,
//! channels and the shard-exchange TCP sockets — not UDP — so
//! [`MAX_FRAME`] applies to single-message frames only, and bundles never
//! nest.
//!
//! This codec is also the `whatsup-sim` distributed wire format: the
//! sharded engine's socket transport (`sim-shard-worker --listen`, one
//! shard per remote machine) moves these very bundle encodings inside its
//! length-prefixed command frames, so anything the simulator exchanges
//! across machines is by construction expressible on the deployment
//! stack's network encoding. The engine's per-cycle measurement counters
//! are folded driver-side from the phase replies, so no engine-internal
//! counter frame rides on top of this codec. See the
//! `whatsup_sim::engine` module docs, "distributed topology" and
//! "measurement pipeline".

use bytes::{Buf, BufMut, Bytes, BytesMut};
use whatsup_core::message::wire;
use whatsup_core::{
    Descriptor, ItemHeader, NewsItem, NewsMessage, NodeId, Payload, Profile, ProfileEntry,
    SharedProfile,
};

/// Maximum single-message frame size we allow on the wire (UDP datagram
/// safety margin). Mailbox bundles are exempt — they are batches for
/// stream-like transports.
pub const MAX_FRAME: usize = 60 * 1024;

/// One addressed message inside a mailbox bundle.
#[derive(Debug, Clone, PartialEq)]
pub struct BundleEntry {
    /// Destination node.
    pub to: NodeId,
    /// Sending node (the inner frame's `from`).
    pub from: NodeId,
    /// The message itself (never a nested bundle).
    pub message: WireMessage,
}

/// A decoded frame: the sender and what it sent. News carries the full item
/// content; the protocol-level [`Payload`] is derived via
/// [`WireMessage::try_into_payload`].
#[derive(Debug, Clone, PartialEq)]
pub enum WireMessage {
    Gossip {
        kind: u8,
        descriptors: Vec<Descriptor<SharedProfile>>,
    },
    News {
        item: NewsItem,
        profile: SharedProfile,
        dislikes: u8,
        hops: u16,
    },
    /// A shard-exchange mailbox bundle; the frame-level `from` is the
    /// emitting shard's index, not a node id.
    Bundle(Vec<BundleEntry>),
}

impl WireMessage {
    /// Converts to the sans-io node's payload. News ids are recomputed from
    /// content here — the wire never carried them.
    ///
    /// Fallible because a [`WireMessage`] can be built by hand with a
    /// gossip kind [`decode`] would never produce, and because a
    /// [`WireMessage::Bundle`] is a transport batch, not a protocol
    /// payload — unpack the entries instead. Both cases surface typed
    /// errors so no frame handler on an untrusted input path has a panic
    /// to reach.
    pub fn try_into_payload(self) -> Result<Payload, DecodeError> {
        match self {
            WireMessage::Gossip { kind, descriptors } => match kind {
                wire::RPS_REQUEST => Ok(Payload::RpsRequest(descriptors)),
                wire::RPS_RESPONSE => Ok(Payload::RpsResponse(descriptors)),
                wire::WUP_REQUEST => Ok(Payload::WupRequest(descriptors)),
                wire::WUP_RESPONSE => Ok(Payload::WupResponse(descriptors)),
                other => Err(DecodeError::BadTag(other)),
            },
            WireMessage::News {
                item,
                profile,
                dislikes,
                hops,
            } => {
                let header = ItemHeader {
                    id: item.id(),
                    created_at: item.created_at,
                };
                Ok(Payload::News(NewsMessage {
                    header,
                    profile,
                    dislikes,
                    hops,
                }))
            }
            WireMessage::Bundle(_) => Err(DecodeError::BundlePayload),
        }
    }
}

/// Encoding error: the only failure mode is an oversized frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameTooLarge(pub usize);

impl std::fmt::Display for FrameTooLarge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "frame of {} bytes exceeds MAX_FRAME ({MAX_FRAME})",
            self.0
        )
    }
}

impl std::error::Error for FrameTooLarge {}

/// Decoding error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    Truncated,
    BadTag(u8),
    BadUtf8,
    /// A mailbox bundle where a protocol payload was required: bundles are
    /// transport batches and never convert to a [`Payload`].
    BundlePayload,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "frame truncated"),
            DecodeError::BadTag(t) => write!(f, "unknown frame tag {t}"),
            DecodeError::BadUtf8 => write!(f, "invalid utf-8 in string field"),
            DecodeError::BundlePayload => {
                write!(f, "mailbox bundle is not a protocol payload")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encodes a payload from `from`. News payloads need the full item content
/// (the header alone is not enough to reconstruct the wire form), so the
/// caller passes a resolver from item id to content.
pub fn encode(
    from: NodeId,
    payload: &Payload,
    resolve: impl Fn(u64) -> Option<NewsItem>,
) -> Result<Bytes, FrameTooLarge> {
    let mut buf = BytesMut::with_capacity(256);
    encode_into(&mut buf, from, payload, resolve);
    if buf.len() > MAX_FRAME {
        return Err(FrameTooLarge(buf.len()));
    }
    Ok(buf.freeze())
}

/// Appends the single-message frame for `payload` to `buf` without the
/// [`MAX_FRAME`] check (bundle building blocks; datagram callers use
/// [`encode`]).
pub fn encode_into(
    buf: &mut BytesMut,
    from: NodeId,
    payload: &Payload,
    resolve: impl Fn(u64) -> Option<NewsItem>,
) {
    match payload {
        Payload::RpsRequest(d)
        | Payload::RpsResponse(d)
        | Payload::WupRequest(d)
        | Payload::WupResponse(d) => {
            buf.put_u8(payload.wire_id());
            buf.put_u32_le(from);
            put_descriptors(buf, d);
        }
        Payload::News(msg) => {
            let item =
                resolve(msg.header.id).expect("news content must be resolvable for encoding"); // lint:allow(wire-panic) encode path: the emitting node holds the content it forwards
            buf.put_u8(wire::NEWS);
            buf.put_u32_le(from);
            buf.put_u32_le(item.source);
            buf.put_u32_le(item.created_at);
            put_str(buf, &item.title);
            put_str(buf, &item.description);
            put_str(buf, &item.link);
            buf.put_u8(msg.dislikes);
            buf.put_u16_le(msg.hops);
            put_profile(buf, &msg.profile);
        }
    }
}

/// Encodes a mailbox bundle from shard `from_shard`: every `(to, from,
/// payload)` triple as an embedded single-message frame, in the given
/// order. No [`MAX_FRAME`] cap — bundles travel pipes/channels, and each
/// embedded message stays individually datagram-sized by construction of
/// the protocol.
pub fn encode_bundle(
    from_shard: u32,
    entries: &[(NodeId, NodeId, Payload)],
    resolve: impl Fn(u64) -> Option<NewsItem>,
) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + entries.len() * 128);
    encode_bundle_into(&mut buf, from_shard, entries, resolve);
    buf.freeze()
}

/// Appends a mailbox bundle to `buf` (same frame as [`encode_bundle`]).
/// Each inner message is encoded directly into `buf` after a 4-byte length
/// placeholder that is patched once the message's true size is known — one
/// pass, no staging buffer, no second copy. Callers that reuse `buf` across
/// rounds amortize the allocation to zero in steady state.
pub fn encode_bundle_into(
    buf: &mut BytesMut,
    from_shard: u32,
    entries: &[(NodeId, NodeId, Payload)],
    resolve: impl Fn(u64) -> Option<NewsItem>,
) {
    buf.put_u8(wire::MAILBOX_BUNDLE);
    buf.put_u32_le(from_shard);
    buf.put_u32_le(wire_count_u32(entries.len(), "bundle entry count"));
    for (to, from, payload) in entries {
        buf.put_u32_le(*to);
        let at = buf.len();
        buf.put_u32_le(0); // length placeholder
        encode_into(buf, *from, payload, &resolve);
        let len = wire_count_u32(buf.len() - at - 4, "bundle inner frame length");
        // lint:allow(wire-panic) encode path: patching the 4-byte placeholder written just above
        buf[at..at + 4].copy_from_slice(&len.to_le_bytes());
    }
}

/// Narrows an encode-side length/count to its wire field width, loudly.
/// Encode inputs are protocol-bounded (view sizes, profile windows,
/// per-shard mail volumes), so overflow here is a caller bug — but a
/// *silent* `as` truncation would corrupt the frame for every later field,
/// so the narrowing is checked and panics with the field name instead.
/// Decode paths never use these: untrusted input gets typed errors.
fn wire_count_u32(n: usize, what: &str) -> u32 {
    // lint:allow(wire-panic) encode path: loud failure beats silent wire truncation
    u32::try_from(n).unwrap_or_else(|_| panic!("{what} {n} exceeds u32 wire bound"))
}

/// As [`wire_count_u32`], for `u16` wire fields.
fn wire_count_u16(n: usize, what: &str) -> u16 {
    // lint:allow(wire-panic) encode path: loud failure beats silent wire truncation
    u16::try_from(n).unwrap_or_else(|_| panic!("{what} {n} exceeds u16 wire bound"))
}

/// A borrowed view over an encoded mailbox bundle: iterates `(to, inner
/// frame)` pairs straight out of the frame buffer without materializing a
/// `Vec<BundleEntry>`. Each inner frame slice decodes with [`decode`] (which
/// rejects nested bundles); consumers that only route by destination never
/// pay for decoding the message bodies at all.
#[derive(Debug, Clone)]
pub struct BundleView<'a> {
    from_shard: u32,
    remaining_entries: u32,
    rest: &'a [u8],
}

/// Opens a borrowed iterator over a bundle frame. Errors if the frame is
/// not a bundle header; per-entry truncation surfaces lazily from the
/// iterator.
pub fn bundle_view(frame: &[u8]) -> Result<BundleView<'_>, DecodeError> {
    let mut buf = frame;
    if buf.remaining() < 9 {
        return Err(DecodeError::Truncated);
    }
    let tag = buf.get_u8();
    if tag != wire::MAILBOX_BUNDLE {
        return Err(DecodeError::BadTag(tag));
    }
    let from_shard = buf.get_u32_le();
    let remaining_entries = buf.get_u32_le();
    Ok(BundleView {
        from_shard,
        remaining_entries,
        rest: buf,
    })
}

impl<'a> BundleView<'a> {
    /// The emitting shard's index (the frame-level `from`).
    pub fn from_shard(&self) -> u32 {
        self.from_shard
    }

    /// Entries not yet yielded.
    pub fn len(&self) -> usize {
        self.remaining_entries as usize
    }

    pub fn is_empty(&self) -> bool {
        self.remaining_entries == 0
    }
}

impl<'a> Iterator for BundleView<'a> {
    /// `(destination node, borrowed inner single-message frame)`.
    type Item = Result<(NodeId, &'a [u8]), DecodeError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining_entries == 0 {
            return None;
        }
        self.remaining_entries -= 1;
        if self.rest.remaining() < 8 {
            self.remaining_entries = 0;
            return Some(Err(DecodeError::Truncated));
        }
        let to = self.rest.get_u32_le();
        let len = self.rest.get_u32_le() as usize;
        if self.rest.remaining() < len {
            self.remaining_entries = 0;
            return Some(Err(DecodeError::Truncated));
        }
        // lint:allow(wire-panic) bounds checked: remaining >= len two lines above
        let inner = &self.rest[..len];
        self.rest.advance(len);
        // Nested bundles are forbidden on the wire; reject before a caller
        // recurses into `decode`.
        if inner.first() == Some(&wire::MAILBOX_BUNDLE) {
            self.remaining_entries = 0;
            return Some(Err(DecodeError::BadTag(wire::MAILBOX_BUNDLE)));
        }
        Some(Ok((to, inner)))
    }
}

/// Serializes a descriptor list (`count:u16 descriptor*`). Exposed so the
/// simulator's shard exchange can serialize view snapshots with the same
/// encoding gossip frames use.
pub fn put_descriptors(buf: &mut BytesMut, descs: &[Descriptor<SharedProfile>]) {
    buf.put_u16_le(wire_count_u16(descs.len(), "descriptor count"));
    for d in descs {
        buf.put_u32_le(d.node);
        buf.put_u32_le(d.age);
        put_profile(buf, &d.payload);
    }
}

/// Inverse of [`put_descriptors`].
pub fn get_descriptors(buf: &mut &[u8]) -> Result<Vec<Descriptor<SharedProfile>>, DecodeError> {
    if buf.remaining() < 2 {
        return Err(DecodeError::Truncated);
    }
    let count = buf.get_u16_le() as usize;
    let mut descriptors = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        if buf.remaining() < 8 {
            return Err(DecodeError::Truncated);
        }
        let node = buf.get_u32_le();
        let age = buf.get_u32_le();
        let payload = SharedProfile::new(get_profile(buf)?);
        descriptors.push(Descriptor { node, age, payload });
    }
    Ok(descriptors)
}

/// Serializes one profile (`len:u16 (item:u64 timestamp:u32 score:f32)*`).
/// Exposed alongside [`put_descriptors`] so the simulator's shard
/// checkpoints reuse the gossip wire encoding (f32 scores round-trip
/// bit-exactly).
pub fn put_profile(buf: &mut BytesMut, p: &Profile) {
    buf.put_u16_le(wire_count_u16(p.len(), "profile entry count"));
    for e in p.entries() {
        buf.put_u64_le(e.item);
        buf.put_u32_le(e.timestamp);
        buf.put_f32_le(e.score);
    }
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u16_le(wire_count_u16(s.len(), "string field length"));
    buf.put_slice(s.as_bytes());
}

/// Decodes one frame into `(sender, message)`. For bundle frames the
/// "sender" is the emitting shard's index.
pub fn decode(mut buf: &[u8]) -> Result<(NodeId, WireMessage), DecodeError> {
    if buf.remaining() < 5 {
        return Err(DecodeError::Truncated);
    }
    let tag = buf.get_u8();
    let from = buf.get_u32_le();
    match tag {
        wire::RPS_REQUEST | wire::RPS_RESPONSE | wire::WUP_REQUEST | wire::WUP_RESPONSE => {
            let descriptors = get_descriptors(&mut buf)?;
            Ok((
                from,
                WireMessage::Gossip {
                    kind: tag,
                    descriptors,
                },
            ))
        }
        wire::MAILBOX_BUNDLE => {
            if buf.remaining() < 4 {
                return Err(DecodeError::Truncated);
            }
            let count = buf.get_u32_le() as usize;
            let mut entries = Vec::with_capacity(count.min(4096));
            for _ in 0..count {
                if buf.remaining() < 8 {
                    return Err(DecodeError::Truncated);
                }
                let to = buf.get_u32_le();
                let len = buf.get_u32_le() as usize;
                if buf.remaining() < len {
                    return Err(DecodeError::Truncated);
                }
                // lint:allow(wire-panic) bounds checked: remaining >= len just above
                let (inner_from, message) = decode(&buf[..len])?;
                if matches!(message, WireMessage::Bundle(_)) {
                    // Bundles never nest.
                    return Err(DecodeError::BadTag(wire::MAILBOX_BUNDLE));
                }
                buf.advance(len);
                entries.push(BundleEntry {
                    to,
                    from: inner_from,
                    message,
                });
            }
            Ok((from, WireMessage::Bundle(entries)))
        }
        wire::NEWS => {
            if buf.remaining() < 8 {
                return Err(DecodeError::Truncated);
            }
            let source = buf.get_u32_le();
            let created_at = buf.get_u32_le();
            let title = get_str(&mut buf)?;
            let description = get_str(&mut buf)?;
            let link = get_str(&mut buf)?;
            if buf.remaining() < 3 {
                return Err(DecodeError::Truncated);
            }
            let dislikes = buf.get_u8();
            let hops = buf.get_u16_le();
            let profile = SharedProfile::new(get_profile(&mut buf)?);
            let item = NewsItem {
                title,
                description,
                link,
                source,
                created_at,
            };
            Ok((
                from,
                WireMessage::News {
                    item,
                    profile,
                    dislikes,
                    hops,
                },
            ))
        }
        other => Err(DecodeError::BadTag(other)),
    }
}

/// Per-bundle news-decode memo. A delivery round fans one item out to many
/// receivers, so a bundle's news entries repeat the same item-content
/// bytes, and sibling fan-out copies repeat identical profile bytes. Byte
/// equality against the last-decoded span is exact — the decoders are pure
/// functions of the bytes — so a hit reuses the previous result: the item
/// header (skipping three string allocations and the content hash) and the
/// shared profile (skipping the entry parse, the allocation and the norm
/// recompute). Profile reuse also restores the sender-side `Arc` sharing
/// that encoding flattened; receivers treat it copy-on-write either way.
#[derive(Debug, Default)]
pub struct NewsDecodeCache {
    item_bytes: Vec<u8>,
    item_header: Option<ItemHeader>,
    profile_bytes: Vec<u8>,
    profile: Option<SharedProfile>,
}

/// Decodes one bundle inner frame straight to its protocol payload, using
/// `cache` to short-circuit repeated news content within the bundle. The
/// third return is the news item's content when it was decoded fresh (the
/// caller must register it with its item store); `None` for gossip frames
/// and for cache hits — a hit means an entry with identical content bytes
/// was already yielded through this cache.
pub fn decode_bundle_entry(
    mut buf: &[u8],
    cache: &mut NewsDecodeCache,
) -> Result<(NodeId, Payload, Option<NewsItem>), DecodeError> {
    if buf.remaining() < 5 {
        return Err(DecodeError::Truncated);
    }
    let tag = buf.get_u8();
    let from = buf.get_u32_le();
    match tag {
        wire::RPS_REQUEST | wire::RPS_RESPONSE | wire::WUP_REQUEST | wire::WUP_RESPONSE => {
            let d = get_descriptors(&mut buf)?;
            let payload = match tag {
                wire::RPS_REQUEST => Payload::RpsRequest(d),
                wire::RPS_RESPONSE => Payload::RpsResponse(d),
                wire::WUP_REQUEST => Payload::WupRequest(d),
                _ => Payload::WupResponse(d),
            };
            Ok((from, payload, None))
        }
        wire::NEWS => {
            // Delimit the content span (source, created_at, three
            // length-prefixed strings) without parsing it yet.
            let start = buf;
            if buf.remaining() < 8 {
                return Err(DecodeError::Truncated);
            }
            buf.advance(8);
            for _ in 0..3 {
                if buf.remaining() < 2 {
                    return Err(DecodeError::Truncated);
                }
                let len = buf.get_u16_le() as usize;
                if buf.remaining() < len {
                    return Err(DecodeError::Truncated);
                }
                buf.advance(len);
            }
            // lint:allow(wire-panic) in bounds: buf is a strict suffix of start after the advances above
            let content = &start[..start.len() - buf.len()];
            if buf.remaining() < 3 {
                return Err(DecodeError::Truncated);
            }
            let dislikes = buf.get_u8();
            let hops = buf.get_u16_le();
            // Delimit the profile span (`len:u16` + 16 bytes per entry).
            if buf.remaining() < 2 {
                return Err(DecodeError::Truncated);
            }
            // lint:allow(wire-panic) bounds checked: remaining >= 2 just above
            let n_entries = u16::from_le_bytes([buf[0], buf[1]]) as usize;
            let profile_len = 2 + n_entries * 16;
            if buf.remaining() < profile_len {
                return Err(DecodeError::Truncated);
            }
            // lint:allow(wire-panic) bounds checked: remaining >= profile_len just above
            let profile_span = &buf[..profile_len];

            let (header, fresh_item) = match cache.item_header {
                Some(h) if cache.item_bytes == content => (h, None),
                _ => {
                    let mut cbuf = content;
                    let source = cbuf.get_u32_le();
                    let created_at = cbuf.get_u32_le();
                    let title = get_str(&mut cbuf)?;
                    let description = get_str(&mut cbuf)?;
                    let link = get_str(&mut cbuf)?;
                    let item = NewsItem {
                        title,
                        description,
                        link,
                        source,
                        created_at,
                    };
                    let header = item.header();
                    cache.item_bytes.clear();
                    cache.item_bytes.extend_from_slice(content);
                    cache.item_header = Some(header);
                    (header, Some(item))
                }
            };
            let profile = match &cache.profile {
                Some(p) if cache.profile_bytes == profile_span => SharedProfile::clone(p),
                _ => {
                    let mut pbuf = profile_span;
                    let p = SharedProfile::new(get_profile(&mut pbuf)?);
                    cache.profile_bytes.clear();
                    cache.profile_bytes.extend_from_slice(profile_span);
                    cache.profile = Some(SharedProfile::clone(&p));
                    p
                }
            };
            Ok((
                from,
                Payload::News(NewsMessage {
                    header,
                    profile,
                    dislikes,
                    hops,
                }),
                fresh_item,
            ))
        }
        other => Err(DecodeError::BadTag(other)),
    }
}

/// Inverse of [`put_profile`].
pub fn get_profile(buf: &mut &[u8]) -> Result<Profile, DecodeError> {
    if buf.remaining() < 2 {
        return Err(DecodeError::Truncated);
    }
    let len = buf.get_u16_le() as usize;
    let mut entries = Vec::with_capacity(len.min(4096));
    for _ in 0..len {
        if buf.remaining() < 16 {
            return Err(DecodeError::Truncated);
        }
        let item = buf.get_u64_le();
        let timestamp = buf.get_u32_le();
        let score = buf.get_f32_le();
        entries.push(ProfileEntry {
            item,
            timestamp,
            score,
        });
    }
    // Wire profiles are serialized from sorted storage, so this takes the
    // allocation-reusing sorted path on every well-formed frame.
    Ok(Profile::from_vec(entries))
}

fn get_str(buf: &mut &[u8]) -> Result<String, DecodeError> {
    if buf.remaining() < 2 {
        return Err(DecodeError::Truncated);
    }
    let len = buf.get_u16_le() as usize;
    if buf.remaining() < len {
        return Err(DecodeError::Truncated);
    }
    // lint:allow(wire-panic) bounds checked: remaining >= len just above
    let bytes = buf[..len].to_vec();
    buf.advance(len);
    String::from_utf8(bytes).map_err(|_| DecodeError::BadUtf8)
}

// ---------------------------------------------------------------------------
// Anti-entropy frames (scuttlebutt digest/delta reconciliation)
// ---------------------------------------------------------------------------
//
// ```text
// digest       := DIGEST:u8 from:u32 count:u32 (node:u32 incarnation:u32 max_version:u64)*
// delta        := DELTA:u8 from:u32 count:u32 delta_entry*
// delta_entry  := node:u32 incarnation:u32 version:u64 kind:u8 payload
// payload      := heartbeat:u32            (kind 0)
//               | profile_digest:u64       (kind 1)
//               | item:u32 published_at:u32 (kind 2)
// ```
//
// Entries for one node are emitted in ascending version order so that a
// budget-truncated delta always leaves the receiver's per-node max version
// at a resumable point: the next digest advertises exactly the cut, and the
// following delta resumes from there. Out-of-order emission would let the
// digest max leapfrog unsent versions and stall convergence forever.

/// One line of an anti-entropy digest: the highest `(incarnation, version)`
/// the sender holds for `node`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DigestLine {
    pub node: NodeId,
    pub incarnation: u32,
    pub max_version: u64,
}

/// Bytes each digest line occupies on the wire.
pub const DIGEST_LINE_BYTES: usize = 16;

/// The versioned value carried by one delta entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaValue {
    /// Liveness counter: the cycle stamp of the owner's latest heartbeat.
    Heartbeat(u32),
    /// Opaque 64-bit digest of the owner's interest profile.
    ProfileDigest(u64),
    /// A news key the owner published: `(item index, publication cycle)`.
    NewsKey { item: u32, published_at: u32 },
}

/// One versioned entry of an anti-entropy delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaEntry {
    pub node: NodeId,
    pub incarnation: u32,
    pub version: u64,
    pub value: DeltaValue,
}

/// Frame header bytes shared by digest and delta frames
/// (`tag:u8 from:u32 count:u32`).
pub const ANTI_ENTROPY_HEADER_BYTES: usize = 9;

impl DeltaEntry {
    /// Bytes this entry occupies on the wire (header fields + payload).
    pub fn wire_bytes(&self) -> usize {
        17 + match self.value {
            DeltaValue::Heartbeat(_) => 4,
            DeltaValue::ProfileDigest(_) => 8,
            DeltaValue::NewsKey { .. } => 8,
        }
    }
}

/// Encodes an anti-entropy digest frame. Digests summarize whole states and
/// are not budget-packed, so [`MAX_FRAME`] is the only cap.
pub fn encode_digest(from: NodeId, lines: &[DigestLine]) -> Result<Bytes, FrameTooLarge> {
    let mut buf =
        BytesMut::with_capacity(ANTI_ENTROPY_HEADER_BYTES + lines.len() * DIGEST_LINE_BYTES);
    buf.put_u8(wire::DIGEST);
    buf.put_u32_le(from);
    buf.put_u32_le(wire_count_u32(lines.len(), "digest line count"));
    for line in lines {
        buf.put_u32_le(line.node);
        buf.put_u32_le(line.incarnation);
        buf.put_u64_le(line.max_version);
    }
    if buf.len() > MAX_FRAME {
        return Err(FrameTooLarge(buf.len()));
    }
    Ok(buf.freeze())
}

/// Inverse of [`encode_digest`].
pub fn decode_digest(mut buf: &[u8]) -> Result<(NodeId, Vec<DigestLine>), DecodeError> {
    if buf.remaining() < ANTI_ENTROPY_HEADER_BYTES {
        return Err(DecodeError::Truncated);
    }
    let tag = buf.get_u8();
    if tag != wire::DIGEST {
        return Err(DecodeError::BadTag(tag));
    }
    let from = buf.get_u32_le();
    let count = buf.get_u32_le() as usize;
    let mut lines = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        if buf.remaining() < DIGEST_LINE_BYTES {
            return Err(DecodeError::Truncated);
        }
        lines.push(DigestLine {
            node: buf.get_u32_le(),
            incarnation: buf.get_u32_le(),
            max_version: buf.get_u64_le(),
        });
    }
    Ok((from, lines))
}

/// Encodes an anti-entropy delta frame. The caller is responsible for
/// budget-packing the entry list ([`DeltaEntry::wire_bytes`] +
/// [`ANTI_ENTROPY_HEADER_BYTES`] give exact sizes); [`MAX_FRAME`] still
/// applies as the transport's hard cap.
pub fn encode_delta(from: NodeId, entries: &[DeltaEntry]) -> Result<Bytes, FrameTooLarge> {
    let mut buf = BytesMut::with_capacity(ANTI_ENTROPY_HEADER_BYTES + entries.len() * 25);
    buf.put_u8(wire::DELTA);
    buf.put_u32_le(from);
    buf.put_u32_le(wire_count_u32(entries.len(), "delta entry count"));
    for entry in entries {
        buf.put_u32_le(entry.node);
        buf.put_u32_le(entry.incarnation);
        buf.put_u64_le(entry.version);
        match entry.value {
            DeltaValue::Heartbeat(cycle) => {
                buf.put_u8(0);
                buf.put_u32_le(cycle);
            }
            DeltaValue::ProfileDigest(digest) => {
                buf.put_u8(1);
                buf.put_u64_le(digest);
            }
            DeltaValue::NewsKey { item, published_at } => {
                buf.put_u8(2);
                buf.put_u32_le(item);
                buf.put_u32_le(published_at);
            }
        }
    }
    if buf.len() > MAX_FRAME {
        return Err(FrameTooLarge(buf.len()));
    }
    Ok(buf.freeze())
}

/// Inverse of [`encode_delta`].
pub fn decode_delta(mut buf: &[u8]) -> Result<(NodeId, Vec<DeltaEntry>), DecodeError> {
    if buf.remaining() < ANTI_ENTROPY_HEADER_BYTES {
        return Err(DecodeError::Truncated);
    }
    let tag = buf.get_u8();
    if tag != wire::DELTA {
        return Err(DecodeError::BadTag(tag));
    }
    let from = buf.get_u32_le();
    let count = buf.get_u32_le() as usize;
    let mut entries = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        if buf.remaining() < 17 {
            return Err(DecodeError::Truncated);
        }
        let node = buf.get_u32_le();
        let incarnation = buf.get_u32_le();
        let version = buf.get_u64_le();
        let kind = buf.get_u8();
        let value = match kind {
            0 => {
                if buf.remaining() < 4 {
                    return Err(DecodeError::Truncated);
                }
                DeltaValue::Heartbeat(buf.get_u32_le())
            }
            1 => {
                if buf.remaining() < 8 {
                    return Err(DecodeError::Truncated);
                }
                DeltaValue::ProfileDigest(buf.get_u64_le())
            }
            2 => {
                if buf.remaining() < 8 {
                    return Err(DecodeError::Truncated);
                }
                DeltaValue::NewsKey {
                    item: buf.get_u32_le(),
                    published_at: buf.get_u32_le(),
                }
            }
            other => return Err(DecodeError::BadTag(other)),
        };
        entries.push(DeltaEntry {
            node,
            incarnation,
            version,
            value,
        });
    }
    Ok((from, entries))
}

#[cfg(test)]
mod tests {
    use super::*;
    use whatsup_core::ItemId;

    fn profile(items: &[(ItemId, f32)]) -> Profile {
        Profile::from_entries(items.iter().map(|&(item, score)| ProfileEntry {
            item,
            timestamp: 7,
            score,
        }))
    }

    #[test]
    fn gossip_roundtrip_all_kinds() {
        let descs = vec![
            Descriptor {
                node: 3,
                age: 2,
                payload: SharedProfile::new(profile(&[(10, 1.0), (11, 0.0)])),
            },
            Descriptor {
                node: 9,
                age: 0,
                payload: SharedProfile::default(),
            },
        ];
        for make in [
            Payload::RpsRequest as fn(_) -> _,
            Payload::RpsResponse,
            Payload::WupRequest,
            Payload::WupResponse,
        ] {
            let payload = make(descs.clone());
            let frame = encode(42, &payload, |_| None).unwrap();
            let (from, wire) = decode(&frame).unwrap();
            assert_eq!(from, 42);
            assert_eq!(wire.try_into_payload().unwrap(), payload);
        }
    }

    #[test]
    fn news_roundtrip_recomputes_id() {
        let item = NewsItem::new("Breaking", "short desc", "https://x/y", 7, 123);
        let payload = Payload::News(NewsMessage {
            header: item.header(),
            profile: SharedProfile::new(profile(&[(5, 0.75)])),
            dislikes: 2,
            hops: 4,
        });
        let content = item.clone();
        let frame = encode(1, &payload, move |id| {
            assert_eq!(id, content.id());
            Some(content.clone())
        })
        .unwrap();
        let (from, wire) = decode(&frame).unwrap();
        assert_eq!(from, 1);
        let decoded = wire.try_into_payload().unwrap();
        assert_eq!(decoded, payload, "id recomputed from content must match");
    }

    #[test]
    fn truncated_frames_error() {
        let descs = vec![Descriptor {
            node: 1,
            age: 0,
            payload: SharedProfile::new(profile(&[(1, 1.0)])),
        }];
        let frame = encode(0, &Payload::RpsRequest(descs), |_| None).unwrap();
        for cut in [0, 3, 6, frame.len() - 1] {
            assert!(decode(&frame[..cut]).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn bad_tag_rejected() {
        let buf = [99u8, 0, 0, 0, 0, 0, 0];
        assert_eq!(decode(&buf), Err(DecodeError::BadTag(99)));
    }

    #[test]
    fn bundle_is_not_a_payload() {
        let frame = encode_bundle(0, &[], |_| None);
        let (_, wire) = decode(&frame).unwrap();
        assert_eq!(wire.try_into_payload(), Err(DecodeError::BundlePayload));
    }

    #[test]
    fn hand_built_gossip_kind_is_a_typed_error() {
        // `decode` never produces this, but a hand-assembled WireMessage
        // can — the conversion must not be a panic site.
        let wire = WireMessage::Gossip {
            kind: 0xEE,
            descriptors: vec![],
        };
        assert_eq!(wire.try_into_payload(), Err(DecodeError::BadTag(0xEE)));
    }

    #[test]
    fn encoded_size_reflects_profile_length() {
        let small = encode(
            0,
            &Payload::RpsRequest(vec![Descriptor {
                node: 1,
                age: 0,
                payload: SharedProfile::default(),
            }]),
            |_| None,
        )
        .unwrap();
        let big = encode(
            0,
            &Payload::RpsRequest(vec![Descriptor {
                node: 1,
                age: 0,
                payload: SharedProfile::new(profile(
                    &(0..100).map(|i| (i as u64, 1.0)).collect::<Vec<_>>(),
                )),
            }]),
            |_| None,
        )
        .unwrap();
        assert_eq!(big.len() - small.len(), 100 * 16);
    }

    #[test]
    fn bundle_roundtrip_mixed_entries() {
        let item = NewsItem::new("hello", "world", "https://n/1", 3, 9);
        let news = Payload::News(NewsMessage {
            header: item.header(),
            profile: SharedProfile::new(profile(&[(4, 1.0)])),
            dislikes: 1,
            hops: 2,
        });
        let gossip = Payload::WupRequest(vec![Descriptor {
            node: 8,
            age: 1,
            payload: SharedProfile::new(profile(&[(2, 0.0)])),
        }]);
        let entries = vec![(5u32, 1u32, news.clone()), (6u32, 2u32, gossip.clone())];
        let content = item.clone();
        let frame = encode_bundle(3, &entries, move |id| {
            assert_eq!(id, content.id());
            Some(content.clone())
        });
        let (shard, wire) = decode(&frame).unwrap();
        assert_eq!(shard, 3);
        let WireMessage::Bundle(decoded) = wire else {
            panic!("expected bundle")
        };
        assert_eq!(decoded.len(), 2);
        assert_eq!((decoded[0].to, decoded[0].from), (5, 1));
        assert_eq!((decoded[1].to, decoded[1].from), (6, 2));
        assert_eq!(decoded[0].message.clone().try_into_payload().unwrap(), news);
        assert_eq!(
            decoded[1].message.clone().try_into_payload().unwrap(),
            gossip
        );
    }

    #[test]
    fn empty_bundle_roundtrips() {
        let frame = encode_bundle(0, &[], |_| None);
        let (_, wire) = decode(&frame).unwrap();
        assert_eq!(wire, WireMessage::Bundle(vec![]));
    }

    #[test]
    fn truncated_bundle_errors() {
        let entries = vec![(
            1u32,
            0u32,
            Payload::RpsRequest(vec![Descriptor {
                node: 1,
                age: 0,
                payload: SharedProfile::new(profile(&[(1, 1.0)])),
            }]),
        )];
        let frame = encode_bundle(0, &entries, |_| None);
        for cut in [4, 8, 12, frame.len() - 1] {
            assert!(decode(&frame[..cut]).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn oversized_frame_rejected() {
        let huge: Vec<(u64, f32)> = (0..4000u64).map(|i| (i, 1.0)).collect();
        let descs: Vec<Descriptor<SharedProfile>> = (0..10)
            .map(|n| Descriptor {
                node: n,
                age: 0,
                payload: SharedProfile::new(profile(&huge)),
            })
            .collect();
        let err = encode(0, &Payload::WupRequest(descs), |_| None);
        assert!(matches!(err, Err(FrameTooLarge(_))));
    }
}
