//! Binary wire format.
//!
//! Layout (little-endian throughout):
//!
//! ```text
//! frame      := tag:u8 from:u32 body
//! gossip     := count:u16 descriptor*
//! descriptor := node:u32 age:u32 profile
//! profile    := len:u16 entry*
//! entry      := item:u64 timestamp:u32 score:f32
//! news       := source:u32 created:u32 title:str desc:str link:str
//!               dislikes:u8 hops:u16 profile
//! str        := len:u16 utf8-bytes
//! ```
//!
//! The news item's 8-byte id is deliberately absent from the wire: receivers
//! recompute it from the content (paper §II-A), and [`decode`] does exactly
//! that when rebuilding the in-memory [`NewsMessage`].

use bytes::{Buf, BufMut, Bytes, BytesMut};
use whatsup_core::{
    Descriptor, ItemHeader, NewsItem, NewsMessage, NodeId, Payload, Profile, ProfileEntry,
    SharedProfile,
};

/// Maximum frame size we allow on the wire (UDP datagram safety margin).
pub const MAX_FRAME: usize = 60 * 1024;

const TAG_RPS_REQ: u8 = 1;
const TAG_RPS_RESP: u8 = 2;
const TAG_WUP_REQ: u8 = 3;
const TAG_WUP_RESP: u8 = 4;
const TAG_NEWS: u8 = 5;

/// A decoded frame: the sender and what it sent. News carries the full item
/// content; the protocol-level [`Payload`] is derived via
/// [`WireMessage::into_payload`].
#[derive(Debug, Clone, PartialEq)]
pub enum WireMessage {
    Gossip {
        kind: u8,
        descriptors: Vec<Descriptor<SharedProfile>>,
    },
    News {
        item: NewsItem,
        profile: Profile,
        dislikes: u8,
        hops: u16,
    },
}

impl WireMessage {
    /// Converts to the sans-io node's payload. News ids are recomputed from
    /// content here — the wire never carried them.
    pub fn into_payload(self) -> Payload {
        match self {
            WireMessage::Gossip { kind, descriptors } => match kind {
                TAG_RPS_REQ => Payload::RpsRequest(descriptors),
                TAG_RPS_RESP => Payload::RpsResponse(descriptors),
                TAG_WUP_REQ => Payload::WupRequest(descriptors),
                TAG_WUP_RESP => Payload::WupResponse(descriptors),
                other => unreachable!("invalid gossip kind {other}"),
            },
            WireMessage::News {
                item,
                profile,
                dislikes,
                hops,
            } => {
                let header = ItemHeader {
                    id: item.id(),
                    created_at: item.created_at,
                };
                Payload::News(NewsMessage {
                    header,
                    profile,
                    dislikes,
                    hops,
                })
            }
        }
    }
}

/// Encoding error: the only failure mode is an oversized frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameTooLarge(pub usize);

impl std::fmt::Display for FrameTooLarge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "frame of {} bytes exceeds MAX_FRAME ({MAX_FRAME})",
            self.0
        )
    }
}

impl std::error::Error for FrameTooLarge {}

/// Decoding error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    Truncated,
    BadTag(u8),
    BadUtf8,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "frame truncated"),
            DecodeError::BadTag(t) => write!(f, "unknown frame tag {t}"),
            DecodeError::BadUtf8 => write!(f, "invalid utf-8 in string field"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encodes a payload from `from`. News payloads need the full item content
/// (the header alone is not enough to reconstruct the wire form), so the
/// caller passes a resolver from item id to content.
pub fn encode(
    from: NodeId,
    payload: &Payload,
    resolve: impl Fn(u64) -> Option<NewsItem>,
) -> Result<Bytes, FrameTooLarge> {
    let mut buf = BytesMut::with_capacity(256);
    match payload {
        Payload::RpsRequest(d) => encode_gossip(&mut buf, TAG_RPS_REQ, from, d),
        Payload::RpsResponse(d) => encode_gossip(&mut buf, TAG_RPS_RESP, from, d),
        Payload::WupRequest(d) => encode_gossip(&mut buf, TAG_WUP_REQ, from, d),
        Payload::WupResponse(d) => encode_gossip(&mut buf, TAG_WUP_RESP, from, d),
        Payload::News(msg) => {
            let item =
                resolve(msg.header.id).expect("news content must be resolvable for encoding");
            buf.put_u8(TAG_NEWS);
            buf.put_u32_le(from);
            buf.put_u32_le(item.source);
            buf.put_u32_le(item.created_at);
            put_str(&mut buf, &item.title);
            put_str(&mut buf, &item.description);
            put_str(&mut buf, &item.link);
            buf.put_u8(msg.dislikes);
            buf.put_u16_le(msg.hops);
            put_profile(&mut buf, &msg.profile);
        }
    }
    if buf.len() > MAX_FRAME {
        return Err(FrameTooLarge(buf.len()));
    }
    Ok(buf.freeze())
}

fn encode_gossip(buf: &mut BytesMut, tag: u8, from: NodeId, descs: &[Descriptor<SharedProfile>]) {
    buf.put_u8(tag);
    buf.put_u32_le(from);
    buf.put_u16_le(descs.len() as u16);
    for d in descs {
        buf.put_u32_le(d.node);
        buf.put_u32_le(d.age);
        put_profile(buf, &d.payload);
    }
}

fn put_profile(buf: &mut BytesMut, p: &Profile) {
    buf.put_u16_le(p.len() as u16);
    for e in p.entries() {
        buf.put_u64_le(e.item);
        buf.put_u32_le(e.timestamp);
        buf.put_f32_le(e.score);
    }
}

fn put_str(buf: &mut BytesMut, s: &str) {
    debug_assert!(s.len() <= u16::MAX as usize, "string field too long");
    buf.put_u16_le(s.len() as u16);
    buf.put_slice(s.as_bytes());
}

/// Decodes one frame into `(sender, message)`.
pub fn decode(mut buf: &[u8]) -> Result<(NodeId, WireMessage), DecodeError> {
    if buf.remaining() < 5 {
        return Err(DecodeError::Truncated);
    }
    let tag = buf.get_u8();
    let from = buf.get_u32_le();
    match tag {
        TAG_RPS_REQ | TAG_RPS_RESP | TAG_WUP_REQ | TAG_WUP_RESP => {
            if buf.remaining() < 2 {
                return Err(DecodeError::Truncated);
            }
            let count = buf.get_u16_le() as usize;
            let mut descriptors = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                if buf.remaining() < 8 {
                    return Err(DecodeError::Truncated);
                }
                let node = buf.get_u32_le();
                let age = buf.get_u32_le();
                let payload = SharedProfile::new(get_profile(&mut buf)?);
                descriptors.push(Descriptor { node, age, payload });
            }
            Ok((
                from,
                WireMessage::Gossip {
                    kind: tag,
                    descriptors,
                },
            ))
        }
        TAG_NEWS => {
            if buf.remaining() < 8 {
                return Err(DecodeError::Truncated);
            }
            let source = buf.get_u32_le();
            let created_at = buf.get_u32_le();
            let title = get_str(&mut buf)?;
            let description = get_str(&mut buf)?;
            let link = get_str(&mut buf)?;
            if buf.remaining() < 3 {
                return Err(DecodeError::Truncated);
            }
            let dislikes = buf.get_u8();
            let hops = buf.get_u16_le();
            let profile = get_profile(&mut buf)?;
            let item = NewsItem {
                title,
                description,
                link,
                source,
                created_at,
            };
            Ok((
                from,
                WireMessage::News {
                    item,
                    profile,
                    dislikes,
                    hops,
                },
            ))
        }
        other => Err(DecodeError::BadTag(other)),
    }
}

fn get_profile(buf: &mut &[u8]) -> Result<Profile, DecodeError> {
    if buf.remaining() < 2 {
        return Err(DecodeError::Truncated);
    }
    let len = buf.get_u16_le() as usize;
    let mut entries = Vec::with_capacity(len.min(4096));
    for _ in 0..len {
        if buf.remaining() < 16 {
            return Err(DecodeError::Truncated);
        }
        let item = buf.get_u64_le();
        let timestamp = buf.get_u32_le();
        let score = buf.get_f32_le();
        entries.push(ProfileEntry {
            item,
            timestamp,
            score,
        });
    }
    Ok(Profile::from_entries(entries))
}

fn get_str(buf: &mut &[u8]) -> Result<String, DecodeError> {
    if buf.remaining() < 2 {
        return Err(DecodeError::Truncated);
    }
    let len = buf.get_u16_le() as usize;
    if buf.remaining() < len {
        return Err(DecodeError::Truncated);
    }
    let bytes = buf[..len].to_vec();
    buf.advance(len);
    String::from_utf8(bytes).map_err(|_| DecodeError::BadUtf8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use whatsup_core::ItemId;

    fn profile(items: &[(ItemId, f32)]) -> Profile {
        Profile::from_entries(items.iter().map(|&(item, score)| ProfileEntry {
            item,
            timestamp: 7,
            score,
        }))
    }

    #[test]
    fn gossip_roundtrip_all_kinds() {
        let descs = vec![
            Descriptor {
                node: 3,
                age: 2,
                payload: SharedProfile::new(profile(&[(10, 1.0), (11, 0.0)])),
            },
            Descriptor {
                node: 9,
                age: 0,
                payload: SharedProfile::default(),
            },
        ];
        for make in [
            Payload::RpsRequest as fn(_) -> _,
            Payload::RpsResponse,
            Payload::WupRequest,
            Payload::WupResponse,
        ] {
            let payload = make(descs.clone());
            let frame = encode(42, &payload, |_| None).unwrap();
            let (from, wire) = decode(&frame).unwrap();
            assert_eq!(from, 42);
            assert_eq!(wire.into_payload(), payload);
        }
    }

    #[test]
    fn news_roundtrip_recomputes_id() {
        let item = NewsItem::new("Breaking", "short desc", "https://x/y", 7, 123);
        let payload = Payload::News(NewsMessage {
            header: item.header(),
            profile: profile(&[(5, 0.75)]),
            dislikes: 2,
            hops: 4,
        });
        let content = item.clone();
        let frame = encode(1, &payload, move |id| {
            assert_eq!(id, content.id());
            Some(content.clone())
        })
        .unwrap();
        let (from, wire) = decode(&frame).unwrap();
        assert_eq!(from, 1);
        let decoded = wire.into_payload();
        assert_eq!(decoded, payload, "id recomputed from content must match");
    }

    #[test]
    fn truncated_frames_error() {
        let descs = vec![Descriptor {
            node: 1,
            age: 0,
            payload: SharedProfile::new(profile(&[(1, 1.0)])),
        }];
        let frame = encode(0, &Payload::RpsRequest(descs), |_| None).unwrap();
        for cut in [0, 3, 6, frame.len() - 1] {
            assert!(decode(&frame[..cut]).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn bad_tag_rejected() {
        let buf = [99u8, 0, 0, 0, 0, 0, 0];
        assert_eq!(decode(&buf), Err(DecodeError::BadTag(99)));
    }

    #[test]
    fn encoded_size_reflects_profile_length() {
        let small = encode(
            0,
            &Payload::RpsRequest(vec![Descriptor {
                node: 1,
                age: 0,
                payload: SharedProfile::default(),
            }]),
            |_| None,
        )
        .unwrap();
        let big = encode(
            0,
            &Payload::RpsRequest(vec![Descriptor {
                node: 1,
                age: 0,
                payload: SharedProfile::new(profile(
                    &(0..100).map(|i| (i as u64, 1.0)).collect::<Vec<_>>(),
                )),
            }]),
            |_| None,
        )
        .unwrap();
        assert_eq!(big.len() - small.len(), 100 * 16);
    }

    #[test]
    fn oversized_frame_rejected() {
        let huge: Vec<(u64, f32)> = (0..4000u64).map(|i| (i, 1.0)).collect();
        let descs: Vec<Descriptor<SharedProfile>> = (0..10)
            .map(|n| Descriptor {
                node: n,
                age: 0,
                payload: SharedProfile::new(profile(&huge)),
            })
            .collect();
        let err = encode(0, &Payload::WupRequest(descs), |_| None);
        assert!(matches!(err, Err(FrameTooLarge(_))));
    }
}
