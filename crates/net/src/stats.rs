//! Per-protocol traffic accounting (Fig. 8b: WUP vs BEEP bandwidth).

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use whatsup_core::message::PayloadKind;

/// Thread-safe byte/message counters, one set per protocol family.
/// Shared across all peers of a swarm via `Arc`.
#[derive(Debug, Default)]
pub struct TrafficStats {
    rps_bytes: AtomicU64,
    wup_bytes: AtomicU64,
    news_bytes: AtomicU64,
    rps_msgs: AtomicU64,
    wup_msgs: AtomicU64,
    news_msgs: AtomicU64,
}

impl TrafficStats {
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sent message of `kind` with the given encoded size.
    pub fn record(&self, kind: PayloadKind, bytes: usize) {
        let (b, m) = match kind {
            PayloadKind::Rps => (&self.rps_bytes, &self.rps_msgs),
            PayloadKind::Wup => (&self.wup_bytes, &self.wup_msgs),
            PayloadKind::News => (&self.news_bytes, &self.news_msgs),
        };
        b.fetch_add(bytes as u64, Ordering::Relaxed);
        m.fetch_add(1, Ordering::Relaxed);
    }

    /// Immutable snapshot of the counters.
    pub fn snapshot(&self) -> TrafficSnapshot {
        TrafficSnapshot {
            rps_bytes: self.rps_bytes.load(Ordering::Relaxed),
            wup_bytes: self.wup_bytes.load(Ordering::Relaxed),
            news_bytes: self.news_bytes.load(Ordering::Relaxed),
            rps_msgs: self.rps_msgs.load(Ordering::Relaxed),
            wup_msgs: self.wup_msgs.load(Ordering::Relaxed),
            news_msgs: self.news_msgs.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data traffic totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficSnapshot {
    pub rps_bytes: u64,
    pub wup_bytes: u64,
    pub news_bytes: u64,
    pub rps_msgs: u64,
    pub wup_msgs: u64,
    pub news_msgs: u64,
}

impl TrafficSnapshot {
    pub fn total_bytes(&self) -> u64 {
        self.rps_bytes + self.wup_bytes + self.news_bytes
    }

    pub fn total_msgs(&self) -> u64 {
        self.rps_msgs + self.wup_msgs + self.news_msgs
    }

    /// Gossip-overlay bytes (the paper groups RPS under WUP maintenance).
    pub fn wup_layer_bytes(&self) -> u64 {
        self.rps_bytes + self.wup_bytes
    }

    /// Average consumed bandwidth in Kbps per node over `secs` seconds —
    /// the Fig. 8b y-axis.
    pub fn kbps_per_node(bytes: u64, nodes: usize, secs: f64) -> f64 {
        if nodes == 0 || secs <= 0.0 {
            return 0.0;
        }
        (bytes as f64 * 8.0 / 1000.0) / nodes as f64 / secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_per_kind() {
        let s = TrafficStats::new();
        s.record(PayloadKind::Rps, 100);
        s.record(PayloadKind::Wup, 200);
        s.record(PayloadKind::News, 50);
        s.record(PayloadKind::News, 50);
        let snap = s.snapshot();
        assert_eq!(snap.rps_bytes, 100);
        assert_eq!(snap.wup_bytes, 200);
        assert_eq!(snap.news_bytes, 100);
        assert_eq!(snap.news_msgs, 2);
        assert_eq!(snap.total_bytes(), 400);
        assert_eq!(snap.total_msgs(), 4);
        assert_eq!(snap.wup_layer_bytes(), 300);
    }

    #[test]
    fn kbps_math() {
        // 1000 bytes over 1s across 1 node = 8 kbit/s / 1000 = 8 Kbps.
        let v = TrafficSnapshot::kbps_per_node(1000, 1, 1.0);
        assert!((v - 8.0).abs() < 1e-12);
        assert_eq!(TrafficSnapshot::kbps_per_node(1000, 0, 1.0), 0.0);
        assert_eq!(TrafficSnapshot::kbps_per_node(1000, 1, 0.0), 0.0);
    }

    #[test]
    fn concurrent_recording() {
        use std::sync::Arc;
        let s = Arc::new(TrafficStats::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        s.record(PayloadKind::News, 10);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.snapshot().news_msgs, 8000);
        assert_eq!(s.snapshot().news_bytes, 80_000);
    }
}
