//! Real UDP swarm on the loopback interface (the PlanetLab analogue,
//! paper §V-D).
//!
//! One OS thread and one UDP socket per peer; peers look each other up in a
//! shared address registry (standing in for the paper's bootstrap server).
//! Receive-side loss injection (`SwarmConfig::loss`) reproduces the message
//! loss the paper measured on PlanetLab ("nodes do not receive up to 30% of
//! the news that are correctly sent to them") — on loopback, the kernel is
//! too reliable to produce it naturally.

use crate::peer::{NetOracle, Peer};
use crate::stats::TrafficStats;
use crate::swarm::{ItemTable, SwarmConfig, SwarmReport};
use bytes::Bytes;
use parking_lot::Mutex;
use std::net::{SocketAddr, UdpSocket};
use std::sync::Arc;
use std::time::{Duration, Instant};
use whatsup_core::NodeId;
use whatsup_datasets::Dataset;

/// UDP runtime configuration.
#[derive(Debug, Clone, Default)]
pub struct UdpConfig {
    pub swarm: SwarmConfig,
}

/// Runs a full UDP swarm experiment on 127.0.0.1; blocks until completion.
///
/// # Panics
/// Panics if sockets cannot be bound (no loopback available).
pub fn run(dataset: &Dataset, cfg: &UdpConfig) -> SwarmReport {
    let n = dataset.n_users();
    let table = Arc::new(ItemTable::build(dataset, &cfg.swarm));
    let matrix = Arc::new(dataset.likes.clone());
    let stats = Arc::new(TrafficStats::new());
    let deliveries = Arc::new(Mutex::new(Vec::new()));

    // Bind one socket per peer and build the address registry.
    let sockets: Vec<UdpSocket> = (0..n)
        .map(|_| UdpSocket::bind("127.0.0.1:0").expect("bind loopback UDP socket"))
        .collect();
    let registry: Arc<Vec<SocketAddr>> = Arc::new(
        sockets
            .iter()
            .map(|s| s.local_addr().expect("bound socket has addr"))
            .collect(),
    );

    let start = Instant::now() + Duration::from_millis(30);
    let total_cycles = cfg.swarm.cycles + cfg.swarm.drain_cycles;
    let cycle_ms = cfg.swarm.cycle_ms;

    let handles: Vec<_> = sockets
        .into_iter()
        .enumerate()
        .map(|(id, socket)| {
            let registry = Arc::clone(&registry);
            let oracle = NetOracle::new(Arc::clone(&matrix), Arc::clone(&table));
            let mut peer = Peer::new(
                id as NodeId,
                &cfg.swarm,
                oracle,
                Arc::clone(&stats),
                Arc::clone(&deliveries),
            );
            peer.bootstrap(n, cfg.swarm.bootstrap_degree);
            let mut my_items: Vec<(u32, u32)> = table
                .publish_cycle
                .iter()
                .enumerate()
                .filter(|&(idx, _)| table.items[idx].source == id as u32)
                .map(|(idx, &cycle)| (cycle, idx as u32))
                .collect();
            my_items.sort_unstable();
            std::thread::spawn(move || {
                socket
                    .set_read_timeout(Some(Duration::from_millis(3)))
                    .expect("set UDP read timeout");
                let send_all = |frames: Vec<(NodeId, Bytes)>, socket: &UdpSocket| {
                    for (to, frame) in frames {
                        let _ = socket.send_to(&frame, registry[to as usize]);
                    }
                };
                let mut buf = vec![0u8; crate::codec::MAX_FRAME + 64];
                let mut next_cycle: u32 = 0;
                let mut pending = my_items.into_iter().peekable();
                loop {
                    let elapsed = Instant::now().saturating_duration_since(start);
                    let now_cycle = (elapsed.as_millis() as u64 / cycle_ms.max(1)) as u32;
                    while next_cycle <= now_cycle.min(total_cycles) {
                        let t = next_cycle;
                        if t < total_cycles {
                            let mut frames = peer.tick(t);
                            while pending.peek().is_some_and(|&(c, _)| c <= t) {
                                let (_, index) = pending.next().expect("peeked");
                                frames.extend(peer.publish(index, t));
                            }
                            send_all(frames, &socket);
                        }
                        next_cycle += 1;
                    }
                    if now_cycle > total_cycles {
                        break;
                    }
                    match socket.recv_from(&mut buf) {
                        Ok((len, _)) => {
                            let replies = peer.handle_frame(&buf[..len], now_cycle);
                            send_all(replies, &socket);
                        }
                        Err(e)
                            if e.kind() == std::io::ErrorKind::WouldBlock
                                || e.kind() == std::io::ErrorKind::TimedOut => {}
                        Err(e) => {
                            eprintln!("peer {id}: socket error: {e}");
                            break;
                        }
                    }
                }
            })
        })
        .collect();

    for h in handles {
        let _ = h.join();
    }

    let duration_secs = cfg.swarm.duration().as_secs_f64();
    let deliveries = deliveries.lock().clone();
    SwarmReport::from_deliveries(
        "UDP",
        dataset,
        &cfg.swarm,
        &deliveries,
        stats.snapshot(),
        duration_secs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use whatsup_core::Params;
    use whatsup_datasets::{survey, SurveyConfig};

    fn quick_cfg(loss: f64) -> UdpConfig {
        UdpConfig {
            swarm: SwarmConfig {
                params: Params::whatsup(5),
                cycles: 14,
                cycle_ms: 80,
                publish_from: 2,
                measure_from: 5,
                drain_cycles: 2,
                loss,
                ..Default::default()
            },
        }
    }

    #[test]
    fn udp_swarm_disseminates() {
        let _guard = crate::test_support::SWARM_LOCK.lock();
        let d = survey::generate(&SurveyConfig::paper().scaled(0.12), 23);
        let report = run(&d, &quick_cfg(0.0));
        let s = report.scores();
        assert!(s.recall > 0.1, "UDP swarm must deliver news: {s:?}");
        assert!(report.traffic.news_msgs > 0);
        assert!(report.total_kbps() > 0.0);
    }

    #[test]
    fn injected_loss_reduces_recall() {
        let _guard = crate::test_support::SWARM_LOCK.lock();
        let d = survey::generate(&SurveyConfig::paper().scaled(0.12), 23);
        let clean = run(&d, &quick_cfg(0.0));
        let lossy = run(&d, &quick_cfg(0.9));
        assert!(
            lossy.scores().recall < clean.scores().recall,
            "90% receive loss must hurt: clean {:?} lossy {:?}",
            clean.scores(),
            lossy.scores()
        );
    }
}
