//! Swarm experiment configuration and report, shared by the emulator and
//! the UDP runtime.

use crate::stats::TrafficSnapshot;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use whatsup_core::{ItemId, NewsItem, Params};
use whatsup_datasets::Dataset;
use whatsup_metrics::{IrAggregate, IrScores, ItemOutcome};

/// Configuration of a networked WhatsUp run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwarmConfig {
    /// Per-node protocol parameters.
    pub params: Params,
    /// Number of gossip cycles to run.
    pub cycles: u32,
    /// Wall-clock duration of one gossip cycle. The paper's testbed used
    /// 30 s cycles "to run a large number of experiments in reasonable
    /// time"; we default lower still — the protocol only sees cycle counts.
    pub cycle_ms: u64,
    /// First cycle with publications.
    pub publish_from: u32,
    /// Items published before this cycle warm the system but are not scored.
    pub measure_from: u32,
    /// Extra cycles after the last publication for in-flight news to drain.
    pub drain_cycles: u32,
    /// Receive-side message loss probability (PlanetLab analogue, §V-D/E).
    pub loss: f64,
    /// Seed for all per-peer RNGs and the bootstrap graph.
    pub seed: u64,
    /// Random contacts per node at bootstrap.
    pub bootstrap_degree: usize,
}

impl Default for SwarmConfig {
    fn default() -> Self {
        Self {
            params: Params::whatsup(6),
            cycles: 30,
            cycle_ms: 60,
            publish_from: 2,
            measure_from: 10,
            drain_cycles: 3,
            loss: 0.0,
            seed: 0xbee9,
            bootstrap_degree: 8,
        }
    }
}

impl SwarmConfig {
    /// Uniform publication schedule (same shape as the simulator's).
    pub fn schedule(&self, n_items: usize) -> Vec<u32> {
        let span = (self.cycles.saturating_sub(self.publish_from)).max(1) as usize;
        (0..n_items)
            .map(|i| self.publish_from + (i * span / n_items.max(1)) as u32)
            .collect()
    }

    /// Total wall-clock run time.
    pub fn duration(&self) -> std::time::Duration {
        std::time::Duration::from_millis((self.cycles + self.drain_cycles) as u64 * self.cycle_ms)
    }
}

/// The full news-item table of a dataset: contents, id→index map and the
/// publication schedule. Item contents match the simulator's construction
/// so ids, profiles and opinions agree across all three testbeds.
#[derive(Debug, Clone)]
pub struct ItemTable {
    pub items: Vec<NewsItem>,
    pub by_id: HashMap<ItemId, u32>,
    pub publish_cycle: Vec<u32>,
}

impl ItemTable {
    pub fn build(dataset: &Dataset, cfg: &SwarmConfig) -> Self {
        let publish_cycle = cfg.schedule(dataset.n_items());
        let mut items = Vec::with_capacity(dataset.n_items());
        let mut by_id = HashMap::with_capacity(dataset.n_items());
        for spec in &dataset.items {
            let item = NewsItem::new(
                format!("{}-news-{}", dataset.name, spec.index),
                format!("topic-{}", spec.topic),
                format!("https://news.example/{}/{}", dataset.name, spec.index),
                spec.source,
                publish_cycle[spec.index as usize],
            );
            by_id.insert(item.id(), spec.index);
            items.push(item);
        }
        assert_eq!(by_id.len(), items.len(), "item id collision");
        Self {
            items,
            by_id,
            publish_cycle,
        }
    }
}

/// One first-delivery event, recorded by the receiving peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Delivery {
    pub item_index: u32,
    pub node: u32,
    pub liked: bool,
}

/// Result of one swarm run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SwarmReport {
    pub label: String,
    pub n_nodes: usize,
    pub fanout: usize,
    pub duration_secs: f64,
    pub traffic: TrafficSnapshot,
    /// Per measured item: (interested, reached, hits).
    pub outcomes: Vec<ItemOutcome>,
}

impl SwarmReport {
    /// Aggregates deliveries into per-item outcomes over measured items.
    pub fn from_deliveries(
        label: impl Into<String>,
        dataset: &Dataset,
        cfg: &SwarmConfig,
        deliveries: &[Delivery],
        traffic: TrafficSnapshot,
        duration_secs: f64,
    ) -> Self {
        let schedule = cfg.schedule(dataset.n_items());
        let mut reached = vec![0u32; dataset.n_items()];
        let mut hits = vec![0u32; dataset.n_items()];
        for d in deliveries {
            let idx = d.item_index as usize;
            let source = dataset.items[idx].source;
            if d.node == source {
                continue;
            }
            reached[idx] += 1;
            if d.liked {
                hits[idx] += 1;
            }
        }
        let outcomes = dataset
            .items
            .iter()
            .filter(|spec| schedule[spec.index as usize] >= cfg.measure_from)
            .map(|spec| {
                let idx = spec.index as usize;
                let interested = dataset
                    .likes
                    .interested_users(idx)
                    .into_iter()
                    .filter(|&u| u != spec.source)
                    .count();
                ItemOutcome::new(interested, reached[idx] as usize, hits[idx] as usize)
            })
            .collect();
        Self {
            label: label.into(),
            n_nodes: dataset.n_users(),
            fanout: cfg.params.beep.f_like,
            duration_secs,
            traffic,
            outcomes,
        }
    }

    /// Micro-averaged precision/recall/F1.
    pub fn scores(&self) -> IrScores {
        let mut agg = IrAggregate::new();
        for &o in &self.outcomes {
            agg.push(o);
        }
        agg.micro()
    }

    /// Average per-node bandwidth in Kbps for the news (BEEP) layer.
    pub fn news_kbps(&self) -> f64 {
        TrafficSnapshot::kbps_per_node(self.traffic.news_bytes, self.n_nodes, self.duration_secs)
    }

    /// Average per-node bandwidth in Kbps for the gossip (WUP+RPS) layer.
    pub fn wup_kbps(&self) -> f64 {
        TrafficSnapshot::kbps_per_node(
            self.traffic.wup_layer_bytes(),
            self.n_nodes,
            self.duration_secs,
        )
    }

    /// Average total per-node bandwidth in Kbps.
    pub fn total_kbps(&self) -> f64 {
        TrafficSnapshot::kbps_per_node(self.traffic.total_bytes(), self.n_nodes, self.duration_secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whatsup_datasets::{survey, SurveyConfig};

    fn dataset() -> Dataset {
        survey::generate(&SurveyConfig::paper().scaled(0.1), 5)
    }

    #[test]
    fn item_table_matches_dataset() {
        let d = dataset();
        let table = ItemTable::build(&d, &SwarmConfig::default());
        assert_eq!(table.items.len(), d.n_items());
        for (i, item) in table.items.iter().enumerate() {
            assert_eq!(table.by_id[&item.id()], i as u32);
            assert_eq!(item.source, d.items[i].source);
        }
    }

    #[test]
    fn schedule_within_bounds() {
        let cfg = SwarmConfig::default();
        let s = cfg.schedule(100);
        assert!(s.iter().all(|&c| c >= cfg.publish_from && c < cfg.cycles));
    }

    #[test]
    fn report_aggregation_counts_measured_only() {
        let d = dataset();
        let cfg = SwarmConfig {
            measure_from: 0,
            ..Default::default()
        };
        // Deliver item 0 to two nodes, one of which likes it.
        let interested = d.likes.interested_users(0);
        let liker = *interested
            .iter()
            .find(|&&u| u != d.items[0].source)
            .unwrap();
        let disliker = (0..d.n_users() as u32)
            .find(|u| !d.likes.likes(*u as usize, 0))
            .unwrap();
        let deliveries = vec![
            Delivery {
                item_index: 0,
                node: liker,
                liked: true,
            },
            Delivery {
                item_index: 0,
                node: disliker,
                liked: false,
            },
            // Source deliveries are ignored.
            Delivery {
                item_index: 0,
                node: d.items[0].source,
                liked: true,
            },
        ];
        let report = SwarmReport::from_deliveries(
            "test",
            &d,
            &cfg,
            &deliveries,
            TrafficSnapshot::default(),
            1.0,
        );
        let item0 = report.outcomes[0];
        assert_eq!(item0.reached, 2);
        assert_eq!(item0.hits, 1);
    }

    #[test]
    fn bandwidth_helpers() {
        let report = SwarmReport {
            label: "x".into(),
            n_nodes: 10,
            fanout: 6,
            duration_secs: 2.0,
            traffic: TrafficSnapshot {
                rps_bytes: 1000,
                wup_bytes: 1000,
                news_bytes: 4000,
                rps_msgs: 1,
                wup_msgs: 1,
                news_msgs: 4,
            },
            outcomes: vec![],
        };
        assert!((report.news_kbps() - 4000.0 * 8.0 / 1000.0 / 10.0 / 2.0).abs() < 1e-12);
        assert!(report.total_kbps() > report.wup_kbps());
    }
}
