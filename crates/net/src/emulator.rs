//! ModelNet-like network emulator (paper §V-D: "an emulated network of 245
//! nodes deployed on a 25-node cluster equipped with the ModelNet network
//! emulator").
//!
//! Each peer runs on its own thread; all traffic flows through a router
//! thread that applies per-message latency (uniform in a configurable band)
//! and iid loss — the knobs ModelNet provides at the granularity the
//! protocol can observe. Peers tick themselves off the shared start instant,
//! so cycles stay aligned without a coordinator, exactly like the real
//! deployment.

use crate::peer::{NetOracle, Peer};
use crate::stats::TrafficStats;
use crate::swarm::{ItemTable, SwarmConfig, SwarmReport};
use bytes::Bytes;
use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::{Duration, Instant};
use whatsup_core::NodeId;
use whatsup_datasets::Dataset;

/// Emulator fabric configuration.
#[derive(Debug, Clone)]
pub struct EmulatorConfig {
    pub swarm: SwarmConfig,
    /// Per-message one-way latency band (uniform), in milliseconds.
    pub latency_ms: (u64, u64),
    /// Router-level loss probability (link loss; receive-side loss from
    /// `swarm.loss` also applies — use one or the other).
    pub link_loss: f64,
}

impl Default for EmulatorConfig {
    fn default() -> Self {
        Self {
            swarm: SwarmConfig::default(),
            latency_ms: (1, 5),
            link_loss: 0.0,
        }
    }
}

enum RouterMsg {
    Frame { to: NodeId, frame: Bytes },
    Stop,
}

struct Scheduled {
    due: Instant,
    to: NodeId,
    frame: Bytes,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap on due time.
        other.due.cmp(&self.due)
    }
}

/// Runs a full emulated swarm experiment; blocks until completion.
pub fn run(dataset: &Dataset, cfg: &EmulatorConfig) -> SwarmReport {
    let n = dataset.n_users();
    let table = Arc::new(ItemTable::build(dataset, &cfg.swarm));
    let matrix = Arc::new(dataset.likes.clone());
    let stats = Arc::new(TrafficStats::new());
    let deliveries = Arc::new(Mutex::new(Vec::new()));

    // Peer inboxes and the router channel.
    let (router_tx, router_rx) = channel::unbounded::<RouterMsg>();
    let mut inbox_tx: Vec<Sender<Bytes>> = Vec::with_capacity(n);
    let mut inbox_rx: Vec<Option<Receiver<Bytes>>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = channel::unbounded::<Bytes>();
        inbox_tx.push(tx);
        inbox_rx.push(Some(rx));
    }

    let start = Instant::now() + Duration::from_millis(20);
    let total_cycles = cfg.swarm.cycles + cfg.swarm.drain_cycles;
    let cycle_ms = cfg.swarm.cycle_ms;

    // Router thread: latency + loss.
    let router = {
        let latency = cfg.latency_ms;
        let loss = cfg.link_loss;
        let seed = cfg.swarm.seed;
        let inboxes = inbox_tx.clone();
        std::thread::spawn(move || {
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x707e7);
            let mut heap: BinaryHeap<Scheduled> = BinaryHeap::new();
            loop {
                // Deliver everything due.
                let now = Instant::now();
                while heap.peek().is_some_and(|s| s.due <= now) {
                    let s = heap.pop().expect("peeked");
                    // A closed inbox means the peer is done; drop silently.
                    let _ = inboxes[s.to as usize].send(s.frame);
                }
                let timeout = heap
                    .peek()
                    .map(|s| s.due.saturating_duration_since(now))
                    .unwrap_or(Duration::from_millis(10));
                match router_rx.recv_timeout(timeout) {
                    Ok(RouterMsg::Frame { to, frame }) => {
                        if loss > 0.0 && rng.gen_bool(loss) {
                            continue;
                        }
                        let delay = if latency.1 > latency.0 {
                            rng.gen_range(latency.0..=latency.1)
                        } else {
                            latency.0
                        };
                        heap.push(Scheduled {
                            due: Instant::now() + Duration::from_millis(delay),
                            to,
                            frame,
                        });
                    }
                    Ok(RouterMsg::Stop) => break,
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
        })
    };

    // Peer threads.
    let handles: Vec<_> = (0..n)
        .map(|id| {
            let rx = inbox_rx[id].take().expect("each inbox taken once");
            let router_tx = router_tx.clone();
            let oracle = NetOracle::new(Arc::clone(&matrix), Arc::clone(&table));
            let mut peer = Peer::new(
                id as NodeId,
                &cfg.swarm,
                oracle,
                Arc::clone(&stats),
                Arc::clone(&deliveries),
            );
            peer.bootstrap(n, cfg.swarm.bootstrap_degree);
            // Which items this peer publishes, in cycle order.
            let mut my_items: Vec<(u32, u32)> = table
                .publish_cycle
                .iter()
                .enumerate()
                .filter(|&(idx, _)| table.items[idx].source == id as u32)
                .map(|(idx, &cycle)| (cycle, idx as u32))
                .collect();
            my_items.sort_unstable();
            std::thread::spawn(move || {
                let send_all = |frames: Vec<(NodeId, Bytes)>| {
                    for (to, frame) in frames {
                        let _ = router_tx.send(RouterMsg::Frame { to, frame });
                    }
                };
                let mut next_cycle: u32 = 0;
                let mut pending = my_items.into_iter().peekable();
                loop {
                    let now_cycle = cycle_of(start, cycle_ms);
                    // Run due ticks and publications.
                    while next_cycle <= now_cycle.min(total_cycles) {
                        let t = next_cycle;
                        if t < cfg_cycles_end(total_cycles) {
                            send_all(peerify(&mut peer, t, &mut pending));
                        }
                        next_cycle += 1;
                    }
                    if now_cycle > total_cycles {
                        break;
                    }
                    // Drain the inbox until the next cycle boundary.
                    let deadline = start + Duration::from_millis((now_cycle as u64 + 1) * cycle_ms);
                    let timeout = deadline.saturating_duration_since(Instant::now());
                    match rx.recv_timeout(timeout.min(Duration::from_millis(5))) {
                        Ok(frame) => {
                            send_all(peer.handle_frame(&frame, now_cycle));
                        }
                        Err(RecvTimeoutError::Timeout) => {}
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                }
            })
        })
        .collect();

    // Wait for the experiment to finish.
    let run_time = cfg.swarm.duration() + Duration::from_millis(80);
    std::thread::sleep(run_time);
    for h in handles {
        let _ = h.join();
    }
    let _ = router_tx.send(RouterMsg::Stop);
    let _ = router.join();

    let duration_secs = cfg.swarm.duration().as_secs_f64();
    let deliveries = deliveries.lock().clone();
    SwarmReport::from_deliveries(
        "ModelNet",
        dataset,
        &cfg.swarm,
        &deliveries,
        stats.snapshot(),
        duration_secs,
    )
}

/// Current cycle index relative to the shared start instant.
fn cycle_of(start: Instant, cycle_ms: u64) -> u32 {
    let elapsed = Instant::now().saturating_duration_since(start);
    (elapsed.as_millis() as u64 / cycle_ms.max(1)) as u32
}

fn cfg_cycles_end(total: u32) -> u32 {
    total
}

/// One cycle's actions for a peer: gossip tick plus any due publications.
fn peerify(
    peer: &mut Peer,
    cycle: u32,
    pending: &mut std::iter::Peekable<std::vec::IntoIter<(u32, u32)>>,
) -> Vec<(NodeId, Bytes)> {
    let mut frames = peer.tick(cycle);
    while pending.peek().is_some_and(|&(c, _)| c <= cycle) {
        let (_, index) = pending.next().expect("peeked");
        frames.extend(peer.publish(index, cycle));
    }
    frames
}

#[cfg(test)]
mod tests {
    use super::*;
    use whatsup_core::Params;
    use whatsup_datasets::{survey, SurveyConfig};

    fn quick_cfg() -> EmulatorConfig {
        EmulatorConfig {
            swarm: SwarmConfig {
                params: Params::whatsup(5),
                cycles: 14,
                cycle_ms: 80,
                publish_from: 2,
                measure_from: 5,
                drain_cycles: 2,
                ..Default::default()
            },
            latency_ms: (1, 4),
            link_loss: 0.0,
        }
    }

    #[test]
    fn emulated_swarm_disseminates() {
        let _guard = crate::test_support::SWARM_LOCK.lock();
        let d = survey::generate(&SurveyConfig::paper().scaled(0.12), 17);
        let report = run(&d, &quick_cfg());
        let s = report.scores();
        assert!(s.recall > 0.1, "emulated swarm must deliver news: {s:?}");
        assert!(report.traffic.news_msgs > 0);
        assert!(report.traffic.rps_msgs > 0);
        assert!(report.traffic.wup_msgs > 0);
    }

    #[test]
    fn heavy_link_loss_reduces_recall() {
        let _guard = crate::test_support::SWARM_LOCK.lock();
        let d = survey::generate(&SurveyConfig::paper().scaled(0.12), 17);
        let clean = run(&d, &quick_cfg());
        let mut lossy_cfg = quick_cfg();
        lossy_cfg.link_loss = 0.85;
        let lossy = run(&d, &lossy_cfg);
        assert!(
            lossy.scores().recall < clean.scores().recall,
            "85% link loss must hurt: clean {:?} lossy {:?}",
            clean.scores(),
            lossy.scores()
        );
    }
}
