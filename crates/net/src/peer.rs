//! The peer event core shared by the emulator and the UDP runtime.
//!
//! A [`Peer`] wraps the sans-io `WhatsUpNode` with:
//! * the wire codec (encode outgoing, decode incoming),
//! * ground-truth opinions (the like matrix, as in the simulator),
//! * first-delivery recording for the quality metrics,
//! * traffic accounting for the bandwidth metrics.
//!
//! Transports stay trivial: they move `(to, Bytes)` pairs and call
//! [`Peer::tick`] once per gossip cycle.

use crate::codec;
use crate::stats::TrafficStats;
use crate::swarm::{Delivery, ItemTable, SwarmConfig};
use bytes::Bytes;
use parking_lot::Mutex;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;
use whatsup_core::{
    ItemId, NodeId, NodeStats, Opinions, OutMessage, Payload, Profile, WhatsUpNode,
};
use whatsup_datasets::LikeMatrix;

/// Ground-truth opinions backed by the dataset (shared, read-only).
#[derive(Debug, Clone)]
pub struct NetOracle {
    matrix: Arc<LikeMatrix>,
    table: Arc<ItemTable>,
}

impl NetOracle {
    pub fn new(matrix: Arc<LikeMatrix>, table: Arc<ItemTable>) -> Self {
        Self { matrix, table }
    }

    pub fn table(&self) -> &ItemTable {
        &self.table
    }
}

impl Opinions for NetOracle {
    fn likes(&self, node: NodeId, item: ItemId) -> bool {
        match self.table.by_id.get(&item) {
            Some(&idx) => self.matrix.likes(node as usize, idx as usize),
            None => false,
        }
    }
}

/// One peer: protocol node + codec + recording.
pub struct Peer {
    node: WhatsUpNode,
    /// Protocol counters (the node itself stores none — see
    /// [`WhatsUpNode`]'s SoA contract).
    node_stats: NodeStats,
    rng: ChaCha8Rng,
    oracle: NetOracle,
    stats: Arc<TrafficStats>,
    deliveries: Arc<Mutex<Vec<Delivery>>>,
    loss: f64,
}

impl Peer {
    pub fn new(
        id: NodeId,
        cfg: &SwarmConfig,
        oracle: NetOracle,
        stats: Arc<TrafficStats>,
        deliveries: Arc<Mutex<Vec<Delivery>>>,
    ) -> Self {
        let node = WhatsUpNode::new(id, cfg.params.clone());
        let rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ (id as u64).wrapping_mul(0x9e37_79b9));
        Self {
            node,
            node_stats: NodeStats::default(),
            rng,
            oracle,
            stats,
            deliveries,
            loss: cfg.loss,
        }
    }

    pub fn id(&self) -> NodeId {
        self.node.id()
    }

    pub fn node(&self) -> &WhatsUpNode {
        &self.node
    }

    /// Seeds the bootstrap views (same contact-graph shape as the
    /// simulator: `degree` random contacts, half of them in the WUP view).
    pub fn bootstrap(&mut self, n: usize, degree: usize) {
        let id = self.node.id();
        let mut contacts: Vec<NodeId> = Vec::with_capacity(degree);
        while contacts.len() < degree.min(n.saturating_sub(1)) {
            let c = self.rng.gen_range(0..n) as NodeId;
            if c != id && !contacts.contains(&c) {
                contacts.push(c);
            }
        }
        let wup_take = (contacts.len() / 2).max(1);
        self.node.seed_views(
            contacts.iter().map(|&c| (c, Profile::new())),
            contacts.iter().take(wup_take).map(|&c| (c, Profile::new())),
        );
    }

    /// One gossip cycle at logical time `now`.
    pub fn tick(&mut self, now: u32) -> Vec<(NodeId, Bytes)> {
        let out = self.node.on_cycle(now, &mut self.node_stats, &mut self.rng);
        self.encode_all(out)
    }

    /// Publishes the dataset item with the given index.
    pub fn publish(&mut self, index: u32, now: u32) -> Vec<(NodeId, Bytes)> {
        let item = self.oracle.table.items[index as usize].clone();
        let out = self
            .node
            .publish(&item, now, &mut self.node_stats, &mut self.rng);
        self.encode_all(out)
    }

    /// Handles one received frame. Applies receive-side loss injection,
    /// records first deliveries, and returns the frames to send in response.
    pub fn handle_frame(&mut self, frame: &[u8], now: u32) -> Vec<(NodeId, Bytes)> {
        if self.loss > 0.0 && self.rng.gen_bool(self.loss) {
            return Vec::new();
        }
        let Ok((from, wire)) = codec::decode(frame) else {
            // Corrupt frames are dropped: robustness over crash.
            return Vec::new();
        };
        // Mailbox bundles are the simulator's shard-exchange batches, never
        // a peer-level datagram: `try_into_payload` rejects them with a
        // typed error (as it does hand-built frames with a bad gossip
        // kind), so a confused or malicious sender cannot smuggle a batch
        // past the per-message path — the frame is dropped like any other
        // corrupt input.
        let Ok(payload) = wire.try_into_payload() else {
            return Vec::new();
        };
        if let Payload::News(msg) = &payload {
            let id = msg.header.id;
            if !self.node.has_seen(id) {
                if let Some(&idx) = self.oracle.table.by_id.get(&id) {
                    let liked = self.oracle.likes(self.node.id(), id);
                    self.deliveries.lock().push(Delivery {
                        item_index: idx,
                        node: self.node.id(),
                        liked,
                    });
                }
            }
        }
        let out = self.node.on_message(
            from,
            payload,
            now,
            &self.oracle.clone(),
            &mut self.node_stats,
            &mut self.rng,
        );
        self.encode_all(out)
    }

    fn encode_all(&mut self, out: Vec<OutMessage>) -> Vec<(NodeId, Bytes)> {
        let id = self.node.id();
        out.into_iter()
            .filter_map(|m| {
                let kind = m.payload.kind();
                let table = &self.oracle.table;
                let encoded = codec::encode(id, &m.payload, |item_id| {
                    table
                        .by_id
                        .get(&item_id)
                        .map(|&idx| table.items[idx as usize].clone())
                });
                match encoded {
                    Ok(bytes) => {
                        self.stats.record(kind, bytes.len());
                        Some((m.to, bytes))
                    }
                    Err(e) => {
                        // An oversized frame is a configuration error
                        // (gigantic profile window); drop loudly.
                        eprintln!("peer {id}: dropping frame: {e}");
                        None
                    }
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::swarm::ItemTable;
    use whatsup_datasets::{survey, SurveyConfig};

    fn setup(loss: f64) -> (Vec<Peer>, Arc<Mutex<Vec<Delivery>>>, Arc<ItemTable>) {
        let dataset = survey::generate(&SurveyConfig::paper().scaled(0.1), 3);
        let cfg = SwarmConfig {
            loss,
            ..Default::default()
        };
        let table = Arc::new(ItemTable::build(&dataset, &cfg));
        let matrix = Arc::new(dataset.likes.clone());
        let stats = Arc::new(TrafficStats::new());
        let deliveries = Arc::new(Mutex::new(Vec::new()));
        let n = dataset.n_users();
        let peers = (0..n as NodeId)
            .map(|id| {
                let oracle = NetOracle::new(Arc::clone(&matrix), Arc::clone(&table));
                let mut p = Peer::new(
                    id,
                    &cfg,
                    oracle,
                    Arc::clone(&stats),
                    Arc::clone(&deliveries),
                );
                p.bootstrap(n, 6);
                p
            })
            .collect();
        (peers, deliveries, table)
    }

    #[test]
    fn bundle_frames_from_the_network_are_dropped() {
        // A shard-exchange bundle is not a peer-level datagram: a confused
        // or malicious sender must not crash the peer or smuggle a batch
        // past the per-message path.
        let (mut peers, _, _) = setup(0.0);
        let inner = vec![(0u32, 7u32, whatsup_core::Payload::RpsRequest(vec![]))];
        let bundle = codec::encode_bundle(0, &inner, |_| None);
        assert!(peers[0].handle_frame(&bundle, 0).is_empty());
    }

    #[test]
    fn tick_produces_encoded_gossip() {
        let (mut peers, _, _) = setup(0.0);
        let frames = peers[0].tick(0);
        assert!(!frames.is_empty());
        for (_, bytes) in &frames {
            assert!(codec::decode(bytes).is_ok());
        }
    }

    #[test]
    fn publish_and_deliver_records_first_reception() {
        let (mut peers, deliveries, table) = setup(0.0);
        // Find item 0's source and let it publish.
        let source = table.items[0].source;
        let frames = peers[source as usize].publish(0, 1);
        assert!(
            !frames.is_empty(),
            "source must have bootstrap WUP neighbors"
        );
        let (to, bytes) = &frames[0];
        let replies = peers[*to as usize].handle_frame(bytes, 1);
        let recorded = deliveries.lock();
        assert_eq!(recorded.len(), 1);
        assert_eq!(recorded[0].item_index, 0);
        assert_eq!(recorded[0].node, *to);
        drop(recorded);
        // Duplicate delivery is not recorded twice.
        let _ = peers[*to as usize].handle_frame(bytes, 1);
        assert_eq!(deliveries.lock().len(), 1);
        let _ = replies;
    }

    #[test]
    fn full_loss_silences_everything() {
        let (mut peers, deliveries, table) = setup(1.0);
        let source = table.items[0].source;
        let frames = peers[source as usize].publish(0, 1);
        for (to, bytes) in &frames {
            let replies = peers[*to as usize].handle_frame(bytes, 1);
            assert!(replies.is_empty());
        }
        assert!(deliveries.lock().is_empty());
    }

    #[test]
    fn corrupt_frames_are_dropped() {
        let (mut peers, _, _) = setup(0.0);
        let out = peers[0].handle_frame(&[0xff, 0x01], 0);
        assert!(out.is_empty());
    }

    #[test]
    fn gossip_roundtrip_between_peers() {
        let (mut peers, _, _) = setup(0.0);
        let frames = peers[0].tick(0);
        let mut responses = Vec::new();
        for (to, bytes) in frames {
            responses.extend(peers[to as usize].handle_frame(&bytes, 0));
        }
        assert!(!responses.is_empty(), "gossip requests produce responses");
    }
}
