//! Networked WhatsUp: the deployment side of the reproduction (paper §V-D/F).
//!
//! The paper evaluates its Java prototype on a ModelNet-emulated cluster and
//! on PlanetLab. This crate provides the equivalents:
//!
//! * [`codec`] — a compact binary wire format. News items travel as content
//!   (title/description/link); the 8-byte id is *computed* by receivers, as
//!   §II-A specifies. Encoded sizes drive the bandwidth accounting of
//!   Fig. 8b.
//! * [`emulator`] — a ModelNet-like fabric: every peer is a thread, messages
//!   flow through a router thread that applies per-link latency, iid loss
//!   and in-order delivery. This is the "cluster" testbed.
//! * [`runtime`] — a real UDP swarm on the loopback interface, one socket
//!   per peer, with receive-side loss injection standing in for PlanetLab's
//!   flaky wide-area links (DESIGN.md §3 documents the substitution).
//! * [`peer`] — the shared peer event loop (`whatsup-core`'s sans-io node +
//!   codec + traffic accounting) used by both fabrics.
//! * [`swarm`] — experiment configuration and the report both fabrics
//!   produce (delivery quality + per-protocol bandwidth).
//!
//! Both fabrics run the *same* protocol implementation as the simulator —
//! `whatsup_core::WhatsUpNode` — so differences in results come from the
//! transport, not from reimplementation drift (this is what Fig. 8a checks).

pub mod codec;
pub mod emulator;
pub mod peer;
pub mod runtime;
pub mod stats;
pub mod swarm;

pub use codec::WireMessage;
pub use emulator::EmulatorConfig;
pub use runtime::UdpConfig;
pub use stats::TrafficStats;
pub use swarm::{SwarmConfig, SwarmReport};

/// Swarm runs are wall-clock sensitive (hundreds of peer threads ticking on
/// real timers); concurrent swarm tests starve each other's schedulers and
/// produce bogus delivery numbers. Every test that spins up a swarm holds
/// this lock for its full duration.
#[cfg(test)]
pub(crate) mod test_support {
    pub static SWARM_LOCK: parking_lot::Mutex<()> = parking_lot::Mutex::new(());
}
