//! Property tests over whole gossip executions: arbitrary interleavings of
//! exchanges must preserve the structural invariants of both layers.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use whatsup_gossip::{Clustering, ClusteringConfig, Descriptor, NodeId, Rps, RpsConfig};

/// Payload: a small integer "profile"; similarity = negative distance.
fn sim(a: &u16, b: &u16) -> f64 {
    -((*a as f64) - (*b as f64)).abs()
}

fn check_view_invariants<'a>(
    ids: impl Iterator<Item = NodeId> + 'a,
    self_id: NodeId,
    capacity: usize,
) {
    let collected: Vec<NodeId> = ids.collect();
    assert!(collected.len() <= capacity, "view exceeds capacity");
    assert!(!collected.contains(&self_id), "view contains self");
    let mut unique = collected.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), collected.len(), "duplicate nodes in view");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rps_invariants_hold_under_random_schedules(
        seed in 0u64..1000,
        steps in prop::collection::vec((0usize..8, 0usize..8), 1..120),
    ) {
        let n = 8usize;
        let cfg = RpsConfig { view_size: 5, exchange_len: 3 };
        let mut nodes: Vec<Rps<u16>> = (0..n as NodeId).map(|i| Rps::new(i, cfg)).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        // Ring bootstrap.
        for (i, node) in nodes.iter_mut().enumerate() {
            let next = ((i + 1) % n) as NodeId;
            node.seed([Descriptor::fresh(next, next as u16)]);
        }
        for (a, b) in steps {
            let (a, b) = (a % n, b % n);
            if a == b {
                continue;
            }
            // Force an exchange between a and b regardless of partner
            // selection: a sends its exchange payload to b.
            let payload = {
                let node = &mut nodes[a];
                match node.initiate(a as u16, &mut rng) {
                    Some((_, p)) => p,
                    None => continue,
                }
            };
            let response = nodes[b].on_request(payload, b as u16, &mut rng);
            nodes[a].on_response(response, &mut rng);
            for (i, node) in nodes.iter().enumerate() {
                check_view_invariants(node.view().node_ids(), i as NodeId, cfg.view_size);
            }
        }
    }

    #[test]
    fn clustering_invariants_and_similarity_improvement(
        seed in 0u64..1000,
        steps in prop::collection::vec((0usize..8, 0usize..8), 1..120),
    ) {
        let n = 8usize;
        let cfg = ClusteringConfig { view_size: 3 };
        let mut nodes: Vec<Clustering<u16>> =
            (0..n as NodeId).map(|i| Clustering::new(i, cfg)).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xc1);
        let _ = &mut rng;
        // Profiles: node i has value i*10; ring bootstrap.
        for (i, node) in nodes.iter_mut().enumerate() {
            let next = ((i + 1) % n) as NodeId;
            node.seed([Descriptor::fresh(next, next as u16 * 10)]);
        }
        for (a, b) in steps {
            let (a, b) = (a % n, b % n);
            if a == b {
                continue;
            }
            let payload = {
                match nodes[a].initiate(a as u16 * 10) {
                    Some((_, p)) => p,
                    None => continue,
                }
            };
            let response = nodes[b].on_request(payload, &[], b as u16 * 10, &sim);
            let own = a as u16 * 10;
            nodes[a].on_response(response, &[], &own, &sim);
            for (i, node) in nodes.iter().enumerate() {
                check_view_invariants(node.view().node_ids(), i as NodeId, cfg.view_size);
            }
        }
    }
}

#[test]
fn long_mixed_run_converges_views_to_neighbors() {
    // Deterministic long run: after many exchanges with RPS feeding the
    // clustering layer, each node's cluster view should contain close ids
    // (profiles are the ids themselves, similarity is -distance).
    let n = 24usize;
    let rps_cfg = RpsConfig {
        view_size: 8,
        exchange_len: 4,
    };
    let cl_cfg = ClusteringConfig { view_size: 4 };
    let mut rps: Vec<Rps<u16>> = (0..n as NodeId).map(|i| Rps::new(i, rps_cfg)).collect();
    let mut cl: Vec<Clustering<u16>> = (0..n as NodeId)
        .map(|i| Clustering::new(i, cl_cfg))
        .collect();
    let mut rng = ChaCha8Rng::seed_from_u64(77);
    for i in 0..n {
        let next = ((i + 1) % n) as NodeId;
        rps[i].seed([Descriptor::fresh(next, next as u16)]);
        cl[i].seed([Descriptor::fresh(next, next as u16)]);
    }
    for _round in 0..60 {
        for i in 0..n {
            if let Some((partner, payload)) = rps[i].initiate(i as u16, &mut rng) {
                let response = rps[partner as usize].on_request(payload, partner as u16, &mut rng);
                rps[i].on_response(response, &mut rng);
            }
            if let Some((partner, payload)) = cl[i].initiate(i as u16) {
                let p = partner as usize;
                let rps_cands: Vec<Descriptor<u16>> = rps[p].view().entries().to_vec();
                let response = cl[p].on_request(payload, &rps_cands, p as u16, &sim);
                let own = i as u16;
                let own_cands: Vec<Descriptor<u16>> = rps[i].view().entries().to_vec();
                cl[i].on_response(response, &own_cands, &own, &sim);
            }
        }
    }
    // Every node's cluster view should average a distance well under random
    // (random expectation ≈ n/3 = 8).
    let mut total_dist = 0.0;
    let mut count = 0usize;
    for (i, node) in cl.iter().enumerate() {
        for id in node.view().node_ids() {
            total_dist += ((id as f64) - (i as f64)).abs();
            count += 1;
        }
    }
    let avg = total_dist / count as f64;
    assert!(
        avg < 5.0,
        "clustering failed to converge: avg id distance {avg}"
    );
}
