//! Random peer sampling (paper §II, following Jelasity et al., ACM TOCS'07).
//!
//! Periodically each node selects the *oldest* entry in its RPS view, and
//! exchanges its own fresh descriptor plus *half of its view* with it
//! (push-pull). Both sides then renew their view with a uniform random
//! sample of the union of the old view and the received entries. The union
//! of RPS views approximates a continuously changing random graph, which is
//! what gives WhatsUp its connectivity and its serendipity reservoir (BEEP's
//! dislike path picks targets here).

use crate::view::{dedup_freshest, Descriptor, NodeId, View};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// RPS tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RpsConfig {
    /// View size (`RPSvs` in Table II; paper default 30).
    pub view_size: usize,
    /// Number of descriptors shipped per exchange; the paper ships half the
    /// view, which is the classic setting.
    pub exchange_len: usize,
}

impl Default for RpsConfig {
    fn default() -> Self {
        Self {
            view_size: 30,
            exchange_len: 15,
        }
    }
}

impl RpsConfig {
    /// Config with `view_size` and the canonical half-view exchange length.
    pub fn with_view_size(view_size: usize) -> Self {
        Self {
            view_size,
            exchange_len: (view_size / 2).max(1),
        }
    }
}

/// The per-node RPS protocol state machine.
#[derive(Debug, Clone)]
pub struct Rps<P> {
    id: NodeId,
    config: RpsConfig,
    view: View<P>,
}

impl<P: Clone> Rps<P> {
    pub fn new(id: NodeId, config: RpsConfig) -> Self {
        let view = View::new(config.view_size);
        Self { id, config, view }
    }

    pub fn id(&self) -> NodeId {
        self.id
    }

    pub fn view(&self) -> &View<P> {
        &self.view
    }

    pub fn config(&self) -> &RpsConfig {
        &self.config
    }

    /// Seeds the view at bootstrap (contact-node inheritance, §II-D).
    pub fn seed(&mut self, descriptors: impl IntoIterator<Item = Descriptor<P>>) {
        for d in descriptors {
            if d.node != self.id {
                self.view.insert(d);
            }
        }
    }

    /// Starts one gossip round: ages the view, picks the oldest partner and
    /// builds the request payload (own fresh descriptor + half view).
    /// Returns `None` while the view is empty (isolated node).
    pub fn initiate(
        &mut self,
        own_payload: P,
        rng: &mut impl Rng,
    ) -> Option<(NodeId, Vec<Descriptor<P>>)> {
        self.view.age_all();
        let partner = self.view.oldest()?.node;
        let payload = self.exchange_payload(own_payload, rng);
        Some((partner, payload))
    }

    /// Handles an incoming request; merges and returns the response payload.
    pub fn on_request(
        &mut self,
        received: Vec<Descriptor<P>>,
        own_payload: P,
        rng: &mut impl Rng,
    ) -> Vec<Descriptor<P>> {
        let response = self.exchange_payload(own_payload, rng);
        self.merge(received, rng);
        response
    }

    /// Handles the response of an exchange this node initiated.
    pub fn on_response(&mut self, received: Vec<Descriptor<P>>, rng: &mut impl Rng) {
        self.merge(received, rng);
    }

    /// Drops a peer believed failed; RPS heals by resampling on later rounds.
    pub fn evict(&mut self, node: NodeId) {
        self.view.remove(node);
    }

    fn exchange_payload(&self, own_payload: P, rng: &mut impl Rng) -> Vec<Descriptor<P>> {
        let mut payload = self
            .view
            .sample(self.config.exchange_len.saturating_sub(1), rng);
        payload.push(Descriptor::fresh(self.id, own_payload));
        payload
    }

    /// "Keeping a random sample of the union of its own view and the received
    /// one" (§II) — with per-node dedup keeping the freshest descriptor.
    fn merge(&mut self, received: Vec<Descriptor<P>>, rng: &mut impl Rng) {
        let union = self
            .view
            .entries()
            .iter()
            .cloned()
            .chain(received)
            .collect::<Vec<_>>();
        let mut deduped = dedup_freshest(union, self.id);
        deduped.shuffle(rng);
        deduped.truncate(self.config.view_size);
        self.view.replace_with(deduped);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(99)
    }

    fn descriptors(ids: &[NodeId]) -> Vec<Descriptor<u8>> {
        ids.iter().map(|&i| Descriptor::fresh(i, 0)).collect()
    }

    #[test]
    fn empty_view_cannot_initiate() {
        let mut rps: Rps<u8> = Rps::new(0, RpsConfig::default());
        assert!(rps.initiate(0, &mut rng()).is_none());
    }

    #[test]
    fn seed_excludes_self() {
        let mut rps: Rps<u8> = Rps::new(1, RpsConfig::with_view_size(4));
        rps.seed(descriptors(&[1, 2, 3]));
        assert!(!rps.view().contains(1));
        assert_eq!(rps.view().len(), 2);
    }

    #[test]
    fn initiate_targets_oldest_and_ships_self() {
        let mut rps: Rps<u8> = Rps::new(0, RpsConfig::with_view_size(4));
        rps.seed(descriptors(&[1, 2]));
        // Age node 1 artificially by two extra rounds of no contact with 2:
        // insert 2 freshly again after aging once.
        rps.view.age_all();
        rps.view.insert(Descriptor::fresh(2, 0));
        let (partner, payload) = rps.initiate(7, &mut rng()).unwrap();
        assert_eq!(partner, 1);
        assert!(payload
            .iter()
            .any(|d| d.node == 0 && d.age == 0 && d.payload == 7));
        assert!(payload.len() <= rps.config().exchange_len);
    }

    #[test]
    fn merge_keeps_view_bounded_and_random() {
        let mut rps: Rps<u8> = Rps::new(
            0,
            RpsConfig {
                view_size: 4,
                exchange_len: 2,
            },
        );
        rps.seed(descriptors(&[1, 2, 3, 4]));
        rps.on_response(descriptors(&[5, 6, 7, 8]), &mut rng());
        assert_eq!(rps.view().len(), 4);
        for id in rps.view().node_ids() {
            assert!((1..=8).contains(&id));
        }
    }

    #[test]
    fn merge_never_contains_self() {
        let mut rps: Rps<u8> = Rps::new(9, RpsConfig::with_view_size(8));
        rps.seed(descriptors(&[1, 2]));
        rps.on_response(descriptors(&[9, 9, 3]), &mut rng());
        assert!(!rps.view().contains(9));
    }

    #[test]
    fn on_request_returns_payload_with_self() {
        let mut rps: Rps<u8> = Rps::new(4, RpsConfig::with_view_size(6));
        rps.seed(descriptors(&[1, 2, 3]));
        let resp = rps.on_request(descriptors(&[5]), 42, &mut rng());
        assert!(resp.iter().any(|d| d.node == 4 && d.payload == 42));
        assert!(rps.view().contains(5));
    }

    #[test]
    fn push_pull_spreads_membership() {
        // Star bootstrap: everyone only knows node 0. After a few rounds of
        // pairwise exchange, views should contain diverse peers.
        let n = 16u32;
        let cfg = RpsConfig {
            view_size: 6,
            exchange_len: 3,
        };
        let mut nodes: Vec<Rps<u8>> = (0..n).map(|i| Rps::new(i, cfg)).collect();
        for node in nodes.iter_mut().skip(1) {
            node.seed(descriptors(&[0]));
        }
        nodes[0].seed(descriptors(&[1, 2, 3]));
        let mut r = rng();
        for _round in 0..20 {
            for i in 0..n as usize {
                let initiated = nodes[i].initiate(0, &mut r);
                if let Some((partner, payload)) = initiated {
                    let (a, b) = (i, partner as usize);
                    // Split borrows: take partner out temporarily.
                    let response = {
                        let partner_node = &mut nodes[b];
                        partner_node.on_request(payload, 0, &mut r)
                    };
                    nodes[a].on_response(response, &mut r);
                }
            }
        }
        let avg_view: f64 = nodes.iter().map(|x| x.view().len() as f64).sum::<f64>() / n as f64;
        assert!(avg_view > 4.0, "views stayed starved: {avg_view}");
        // At least half the nodes should know someone other than node 0.
        let diverse = nodes
            .iter()
            .filter(|x| x.view().node_ids().any(|id| id != 0))
            .count();
        assert!(diverse >= n as usize / 2);
    }

    #[test]
    fn evict_removes_peer() {
        let mut rps: Rps<u8> = Rps::new(0, RpsConfig::with_view_size(4));
        rps.seed(descriptors(&[1, 2]));
        rps.evict(1);
        assert!(!rps.view().contains(1));
    }
}
