//! Gossip substrate for the WhatsUp reproduction (paper §II).
//!
//! WUP is layered on two classic gossip protocols, both implemented here in
//! *sans-io* style — the protocol structs never touch sockets or clocks; they
//! consume events (`initiate`, `on_request`, `on_response`) and return the
//! messages to send. The same code is therefore driven by the deterministic
//! cycle simulator (`whatsup-sim`) and by the real network runtimes
//! (`whatsup-net`).
//!
//! * [`rps`] — random peer sampling (Jelasity et al., ACM TOCS 2007): keeps a
//!   continuously changing random view that makes the overlay connected and
//!   supplies candidates to the layers above. Exchanges *half* of the view.
//! * [`cluster`] — similarity-based clustering (Vicinity; Voulgaris & van
//!   Steen, Euro-Par 2005): keeps the most similar peers seen so far.
//!   Exchanges the *entire* view.
//! * [`view`] — the partial-view data structure shared by both.
//!
//! The payload carried in view entries (a user profile for WhatsUp) is a type
//! parameter: the substrate is reusable for any descriptor type, which is how
//! the paper's CF baselines reuse it with a different similarity.

pub mod cluster;
pub mod rps;
pub mod view;

pub use cluster::{Clustering, ClusteringConfig, Similarity};
pub use rps::{Rps, RpsConfig};
pub use view::{Descriptor, NodeId, View};
