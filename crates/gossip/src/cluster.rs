//! Similarity-based clustering overlay (paper §II; Vicinity-style).
//!
//! The WUP layer keeps, for each node, the `WUPvs` peers whose profiles are
//! most similar to its own. Each cycle the node picks the *oldest* WUP
//! neighbor and sends its *entire* view (plus its own fresh descriptor); the
//! receiver keeps the most similar nodes out of the union of its own view,
//! the received view, and — crucially — its RPS view, which continuously
//! injects fresh random candidates so the overlay can follow interest drift.
//!
//! The similarity function is injected via the [`Similarity`] trait: WhatsUp
//! plugs the asymmetric WUP metric here, the `*-Cos` variants plug plain
//! cosine, giving the paper's four-way comparison (Fig. 3) for free.

use crate::view::{dedup_freshest, Descriptor, NodeId, View};
use serde::{Deserialize, Serialize};

/// Ranks a candidate payload against the node's own payload. Higher is more
/// similar. Implementations must be pure (no interior mutability observable
/// across calls) so that selection is deterministic.
pub trait Similarity<P> {
    fn score(&self, own: &P, candidate: &P) -> f64;
}

impl<P, F: Fn(&P, &P) -> f64> Similarity<P> for F {
    fn score(&self, own: &P, candidate: &P) -> f64 {
        self(own, candidate)
    }
}

/// SplitMix64-style avalanche of `(a, b)` for decorrelated tie-breaking.
#[inline]
pub fn mix(a: NodeId, b: NodeId) -> u64 {
    let mut x = ((a as u64) << 32) ^ b as u64 ^ 0x9e37_79b9_7f4a_7c15;
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Clustering-layer parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusteringConfig {
    /// View size (`WUPvs`; the paper sets it to `2 · fLIKE`).
    pub view_size: usize,
}

impl Default for ClusteringConfig {
    fn default() -> Self {
        Self { view_size: 20 }
    }
}

/// The per-node clustering protocol state machine.
#[derive(Debug, Clone)]
pub struct Clustering<P> {
    id: NodeId,
    config: ClusteringConfig,
    view: View<P>,
}

impl<P: Clone> Clustering<P> {
    pub fn new(id: NodeId, config: ClusteringConfig) -> Self {
        let view = View::new(config.view_size);
        Self { id, config, view }
    }

    pub fn id(&self) -> NodeId {
        self.id
    }

    pub fn view(&self) -> &View<P> {
        &self.view
    }

    pub fn config(&self) -> &ClusteringConfig {
        &self.config
    }

    /// Seeds the view at bootstrap (view inheritance, §II-D).
    pub fn seed(&mut self, descriptors: impl IntoIterator<Item = Descriptor<P>>) {
        for d in descriptors {
            if d.node != self.id {
                self.view.insert(d);
            }
        }
    }

    /// Starts one round: ages entries, picks the oldest WUP neighbor and
    /// ships the whole view plus a fresh self-descriptor.
    pub fn initiate(&mut self, own_payload: P) -> Option<(NodeId, Vec<Descriptor<P>>)> {
        self.view.age_all();
        let partner = self.view.oldest()?.node;
        Some((partner, self.exchange_payload(own_payload)))
    }

    /// Handles an incoming exchange request: merges candidates (received ∪
    /// own view ∪ `rps_candidates`) keeping the most similar, then answers
    /// with this node's entire view.
    pub fn on_request<S: Similarity<P>>(
        &mut self,
        received: Vec<Descriptor<P>>,
        rps_candidates: &[Descriptor<P>],
        own_payload: P,
        sim: &S,
    ) -> Vec<Descriptor<P>> {
        let response = self.exchange_payload(own_payload.clone());
        self.merge(received, rps_candidates, &own_payload, sim);
        response
    }

    /// Handles the response to an exchange this node initiated.
    pub fn on_response<S: Similarity<P>>(
        &mut self,
        received: Vec<Descriptor<P>>,
        rps_candidates: &[Descriptor<P>],
        own_payload: &P,
        sim: &S,
    ) {
        self.merge(received, rps_candidates, own_payload, sim);
    }

    /// Re-ranks the current view against an updated own profile, dropping
    /// nothing but reordering nothing either — views are sets; ranking only
    /// matters during merges. Exposed for completeness/testing.
    pub fn contains(&self, node: NodeId) -> bool {
        self.view.contains(node)
    }

    /// Drops a peer believed failed.
    pub fn evict(&mut self, node: NodeId) {
        self.view.remove(node);
    }

    fn exchange_payload(&self, own_payload: P) -> Vec<Descriptor<P>> {
        let mut payload: Vec<Descriptor<P>> = self.view.entries().to_vec();
        payload.push(Descriptor::fresh(self.id, own_payload));
        payload
    }

    /// "The receiving node selects the nodes from the union of its own and
    /// the received views whose profiles are closest to its own" (§II).
    fn merge<S: Similarity<P>>(
        &mut self,
        received: Vec<Descriptor<P>>,
        rps_candidates: &[Descriptor<P>],
        own_payload: &P,
        sim: &S,
    ) {
        let union = self
            .view
            .entries()
            .iter()
            .cloned()
            .chain(received)
            .chain(rps_candidates.iter().cloned())
            .collect::<Vec<_>>();
        let mut deduped = dedup_freshest(union, self.id);
        // Rank by similarity descending; ties by freshness, then by a
        // per-node id mix. The mix matters: before profiles mature, *all*
        // scores tie, and any globally consistent tie order (e.g. lowest id
        // first) would collapse every node's view onto the same few peers,
        // wrecking the overlay. Mixing with the local id keeps tie-breaking
        // deterministic per node but decorrelated across nodes.
        // The id mix is precomputed per candidate: the sort comparator
        // would otherwise re-derive both sides' mixes on every comparison
        // (O(n log n) avalanche evaluations per merge, on the per-cycle
        // gossip path).
        let self_id = self.id;
        let mut scored: Vec<(f64, u64, Descriptor<P>)> = deduped
            .drain(..)
            .map(|d| (sim.score(own_payload, &d.payload), mix(self_id, d.node), d))
            .collect();
        scored.sort_by(|(sa, ma, da), (sb, mb, db)| {
            sb.partial_cmp(sa)
                .expect("similarity scores must not be NaN")
                .then(da.age.cmp(&db.age))
                .then(ma.cmp(mb))
        });
        scored.truncate(self.config.view_size);
        self.view
            .replace_with(scored.into_iter().map(|(_, _, d)| d).collect());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Similarity for test payloads: negative distance between bytes.
    fn byte_sim(own: &u8, cand: &u8) -> f64 {
        -((*own as f64) - (*cand as f64)).abs()
    }

    fn d(node: NodeId, payload: u8) -> Descriptor<u8> {
        Descriptor::fresh(node, payload)
    }

    #[test]
    fn merge_keeps_most_similar() {
        let mut c: Clustering<u8> = Clustering::new(0, ClusteringConfig { view_size: 2 });
        c.seed([d(1, 100), d(2, 50)]);
        c.on_response(vec![d(3, 11), d(4, 90)], &[], &10, &byte_sim);
        // Own payload 10: closest are 11 (node 3) and 50 (node 2).
        assert!(c.contains(3));
        assert!(c.contains(2));
        assert!(!c.contains(1));
        assert_eq!(c.view().len(), 2);
    }

    #[test]
    fn rps_candidates_join_the_union() {
        let mut c: Clustering<u8> = Clustering::new(0, ClusteringConfig { view_size: 1 });
        c.seed([d(1, 200)]);
        c.on_response(vec![], &[d(9, 10)], &10, &byte_sim);
        assert!(c.contains(9));
    }

    #[test]
    fn initiate_ships_entire_view_plus_self() {
        let mut c: Clustering<u8> = Clustering::new(5, ClusteringConfig { view_size: 3 });
        c.seed([d(1, 1), d(2, 2)]);
        let (partner, payload) = c.initiate(42).unwrap();
        assert!(partner == 1 || partner == 2);
        assert_eq!(payload.len(), 3);
        assert!(payload.iter().any(|x| x.node == 5 && x.payload == 42));
    }

    #[test]
    fn on_request_answers_with_view() {
        let mut c: Clustering<u8> = Clustering::new(5, ClusteringConfig { view_size: 3 });
        c.seed([d(1, 1)]);
        let resp = c.on_request(vec![d(2, 2)], &[], 0, &byte_sim);
        assert!(resp.iter().any(|x| x.node == 5));
        assert!(resp.iter().any(|x| x.node == 1));
        assert!(c.contains(2));
    }

    #[test]
    fn never_contains_self() {
        let mut c: Clustering<u8> = Clustering::new(7, ClusteringConfig { view_size: 4 });
        c.on_response(vec![d(7, 0), d(1, 0)], &[d(7, 0)], &0, &byte_sim);
        assert!(!c.contains(7));
    }

    #[test]
    fn oldest_first_partner_selection() {
        let mut c: Clustering<u8> = Clustering::new(0, ClusteringConfig { view_size: 2 });
        c.seed([d(1, 1)]);
        c.initiate(0); // ages node 1 to 1
        c.on_response(vec![d(2, 2)], &[], &0, &byte_sim); // node 2 age 0
        let (partner, _) = c.initiate(0).unwrap();
        assert_eq!(partner, 1, "older entry must be chosen");
    }

    #[test]
    fn deterministic_merge_under_ties() {
        let run = |id: NodeId| {
            let mut c: Clustering<u8> = Clustering::new(id, ClusteringConfig { view_size: 2 });
            c.on_response(vec![d(3, 5), d(1, 5), d(2, 5)], &[], &5, &byte_sim);
            let mut ids: Vec<NodeId> = c.view().node_ids().collect();
            ids.sort_unstable();
            ids
        };
        // Deterministic per node…
        assert_eq!(run(0), run(0));
        assert_eq!(run(0).len(), 2);
        // …but decorrelated across nodes: with all scores tied, different
        // nodes must not all keep the same candidates (no global collapse).
        let distinct: std::collections::HashSet<Vec<NodeId>> =
            (0..16).map(|id| run(id + 100)).collect();
        assert!(distinct.len() > 1, "tie-breaking collapsed onto one order");
    }
}
