//! Property tests pinning [`SeenSet`] to the plain `Vec` dedup it
//! replaced: for every receive order — duplicates, merges across the
//! recent-window boundary, interleaved probes — `insert`/`contains`/`len`
//! must answer exactly like a linear-scan `Vec<ItemId>`, and the sorted
//! export must be the sorted dedup of the input. The engine's SIR dedup
//! (and therefore every report) rides on this equivalence.

use proptest::prelude::*;
use whatsup_core::seen::SeenSet;
use whatsup_core::ItemId;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random receive orders over a small id universe (high duplicate
    /// rate, many merges): every answer matches the Vec dedup.
    #[test]
    fn matches_vec_dedup_across_receive_orders(
        ids in prop::collection::vec(0u64..200, 0..400),
    ) {
        let mut reference: Vec<ItemId> = Vec::new();
        let mut seen = SeenSet::new();
        for &id in &ids {
            let fresh_ref = !reference.contains(&id);
            if fresh_ref {
                reference.push(id);
            }
            prop_assert_eq!(seen.insert(id), fresh_ref);
            prop_assert!(seen.contains(id));
        }
        prop_assert_eq!(seen.len(), reference.len());
        prop_assert_eq!(seen.is_empty(), reference.is_empty());
        for probe in 0..200u64 {
            prop_assert_eq!(seen.contains(probe), reference.contains(&probe));
        }
        let mut sorted = reference;
        sorted.sort_unstable();
        prop_assert_eq!(seen.to_sorted_vec(), sorted);
    }

    /// Sparse ids (few duplicates, sorted-run dominated) and a checkpoint
    /// round-trip mid-stream: the rebuilt set continues identically.
    #[test]
    fn checkpoint_roundtrip_preserves_equivalence(
        before in prop::collection::vec(0u64..100_000, 0..120),
        after in prop::collection::vec(0u64..100_000, 0..120),
    ) {
        let mut reference: Vec<ItemId> = Vec::new();
        let mut seen = SeenSet::new();
        for &id in &before {
            if !reference.contains(&id) {
                reference.push(id);
            }
            seen.insert(id);
        }
        // The NodeState checkpoint form: sorted export, rebuild.
        let mut seen = SeenSet::from_sorted(seen.to_sorted_vec());
        for &id in &after {
            let fresh_ref = !reference.contains(&id);
            if fresh_ref {
                reference.push(id);
            }
            prop_assert_eq!(seen.insert(id), fresh_ref);
        }
        prop_assert_eq!(seen.len(), reference.len());
        let mut sorted = reference;
        sorted.sort_unstable();
        prop_assert_eq!(seen.to_sorted_vec(), sorted);
    }
}
