//! Property tests over the WhatsUp node: arbitrary message storms must
//! never panic, never leak self-references into views, and must maintain
//! the SIR and windowing invariants of Algorithms 1–2.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use whatsup_core::prelude::*;

/// Deterministic opinions: node n likes item i iff (n + i) % 3 != 0.
struct Mix;
impl Opinions for Mix {
    fn likes(&self, node: NodeId, item: ItemId) -> bool {
        !(node as u64 + item).is_multiple_of(3)
    }
}

fn profile_of(items: &[(u64, bool)]) -> Profile {
    Profile::from_entries(items.iter().map(|&(i, liked)| ProfileEntry {
        item: i,
        timestamp: 0,
        score: if liked { 1.0 } else { 0.0 },
    }))
}

/// An arbitrary inbound payload built from fuzz input.
fn payload_from(kind: u8, descs: Vec<(u32, u64, bool)>, item: u64, dislikes: u8) -> Payload {
    let descriptors: Vec<Descriptor<SharedProfile>> = descs
        .into_iter()
        .map(|(n, i, liked)| Descriptor::fresh(n, SharedProfile::new(profile_of(&[(i, liked)]))))
        .collect();
    match kind % 5 {
        0 => Payload::RpsRequest(descriptors),
        1 => Payload::RpsResponse(descriptors),
        2 => Payload::WupRequest(descriptors),
        3 => Payload::WupResponse(descriptors),
        _ => Payload::News(NewsMessage {
            header: ItemHeader {
                id: item,
                created_at: 0,
            },
            profile: SharedProfile::new(profile_of(&[(item.wrapping_add(1), true)])),
            dislikes,
            hops: 0,
        }),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn message_storms_never_violate_invariants(
        seed in 0u64..500,
        msgs in prop::collection::vec(
            (0u8..5, prop::collection::vec((0u32..20, 0u64..50, prop::bool::ANY), 0..6),
             0u64..50, 0u8..10),
            1..60
        ),
    ) {
        let params = Params::whatsup(3);
        let window = params.profile_window;
        let mut node = WhatsUpNode::new(7, params);
        node.seed_views(
            (0..5).map(|i| (i, Profile::new())),
            (0..3).map(|i| (i, Profile::new())),
        );
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut stats = NodeStats::default();
        let mut now: Timestamp = 0;
        for (i, (kind, descs, item, dislikes)) in msgs.into_iter().enumerate() {
            if i % 7 == 0 {
                now += 1;
                let _ = node.on_cycle(now, &mut stats, &mut rng);
            }
            let out = node.on_message(
                (i % 19) as NodeId,
                payload_from(kind, descs, item, dislikes),
                now,
                &Mix,
                &mut stats,
                &mut rng,
            );
            // No message is ever addressed to the node itself.
            prop_assert!(out.iter().all(|m| m.to != 7));
            // The dislike path never extends a counter beyond the TTL; the
            // like path forwards the incoming counter unchanged (it may be
            // above the TTL if a remote peer crafted it — that's inherited,
            // not produced).
            for m in &out {
                if let Payload::News(nm) = &m.payload {
                    prop_assert!(nm.dislikes <= dislikes.max(4).saturating_add(0));
                    prop_assert!(nm.dislikes <= dislikes.saturating_add(1));
                }
            }
            // Views never contain the node itself.
            prop_assert!(!node.wup_neighbor_ids().contains(&7));
            prop_assert!(!node.rps_neighbor_ids().contains(&7));
            // The profile respects the window (entries stamped within it).
            let cutoff = now.saturating_sub(window);
            // Ratings use the *item* timestamp (0 in this storm), so after
            // `window` cycles the profile must have been purged of them.
            if cutoff > 0 {
                prop_assert!(node
                    .profile()
                    .entries()
                    .iter()
                    .all(|e| e.timestamp >= cutoff || e.timestamp == 0 && cutoff == 0));
            }
        }
    }

    #[test]
    fn duplicate_news_never_forwards_twice(
        seed in 0u64..500,
        item in 0u64..100,
        copies in 2usize..6,
    ) {
        let mut node = WhatsUpNode::new(1, Params::whatsup(2));
        node.seed_views(
            (2..8).map(|i| (i, Profile::new())),
            (2..6).map(|i| (i, Profile::new())),
        );
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut stats = NodeStats::default();
        let mut forwarded = 0usize;
        for c in 0..copies {
            let out = node.on_message(
                9,
                Payload::News(NewsMessage {
                    header: ItemHeader { id: item, created_at: 0 },
                    profile: SharedProfile::new(Profile::new()),
                    dislikes: 0,
                    hops: c as u16,
                }),
                0,
                &Mix,
                &mut stats,
                &mut rng,
            );
            if !out.is_empty() {
                forwarded += 1;
            }
        }
        prop_assert!(forwarded <= 1, "SIR: only the first copy may forward");
        prop_assert_eq!(stats.news_received, 1);
        prop_assert_eq!(stats.news_duplicates as usize, copies - 1);
    }
}

#[test]
fn window_purge_enables_reintegration() {
    // §II-E: a user inactive for a full window has an empty profile and is
    // treated as new — and can still receive and rate items afterwards.
    let mut node = WhatsUpNode::new(0, Params::whatsup(2));
    node.seed_views(
        (1..6).map(|i| (i, Profile::new())),
        (1..4).map(|i| (i, Profile::new())),
    );
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let mut stats = NodeStats::default();
    // Rate something at t=0.
    let _ = node.on_message(
        1,
        Payload::News(NewsMessage {
            header: ItemHeader {
                id: 10,
                created_at: 0,
            },
            profile: SharedProfile::new(Profile::new()),
            dislikes: 0,
            hops: 0,
        }),
        0,
        &Mix,
        &mut stats,
        &mut rng,
    );
    assert!(!node.profile().is_empty());
    // A long quiet period: the window purges everything.
    for t in 1..20 {
        let _ = node.on_cycle(t, &mut stats, &mut rng);
    }
    assert!(
        node.profile().is_empty(),
        "inactive user must look like a new node"
    );
    // New item arrives: the node rates and (here) likes it — reintegrated.
    let out = node.on_message(
        2,
        Payload::News(NewsMessage {
            header: ItemHeader {
                id: 20,
                created_at: 20,
            },
            profile: SharedProfile::new(Profile::new()),
            dislikes: 0,
            hops: 0,
        }),
        20,
        &Mix,
        &mut stats,
        &mut rng,
    );
    assert!(node.profile().contains(20));
    assert!(
        !out.is_empty(),
        "likes keep propagating after reintegration"
    );
}

#[test]
fn item_profile_windowing_applies_in_flight() {
    // Algorithm 1 lines 8–10: stale entries are purged from the *item*
    // profile before forwarding.
    let mut node = WhatsUpNode::new(0, Params::whatsup(1));
    node.seed_views([], [(1, Profile::new())]);
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let mut stats = NodeStats::default();
    let mut stale_profile = Profile::new();
    stale_profile.upsert(ProfileEntry {
        item: 99,
        timestamp: 0,
        score: 1.0,
    });
    stale_profile.upsert(ProfileEntry {
        item: 98,
        timestamp: 40,
        score: 1.0,
    });
    let out = node.on_message(
        5,
        Payload::News(NewsMessage {
            header: ItemHeader {
                id: 4,
                created_at: 40,
            }, // node 0 likes 4
            profile: SharedProfile::new(stale_profile),
            dislikes: 0,
            hops: 0,
        }),
        40,
        &Mix,
        &mut stats,
        &mut rng,
    );
    let Payload::News(nm) = &out[0].payload else {
        panic!("expected news")
    };
    assert!(
        !nm.profile.contains(99),
        "stale entry must be purged in flight"
    );
    assert!(nm.profile.contains(98), "fresh entry survives");
}
