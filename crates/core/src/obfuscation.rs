//! Profile obfuscation (paper §VII).
//!
//! The concluding remarks describe an explored extension: "obfuscation
//! mechanisms to hide the exact tastes of users", trading recommendation
//! accuracy for privacy. This module implements the classic *randomized
//! response* scheme over shared profiles:
//!
//! * with probability `1 − ε` an entry is shared truthfully;
//! * with probability `ε` its score is replaced by a fair coin flip.
//!
//! Two design points matter for a gossip recommender:
//!
//! 1. **Only the shared view is obfuscated.** A node's own forwarding
//!    decisions still use its true profile — privacy concerns only what
//!    *other* nodes (and the item profiles traveling the network) see.
//! 2. **Lies are consistent.** The coin for `(node, item)` is a
//!    deterministic hash, not a fresh random draw: re-gossiping the same
//!    profile reveals nothing new, so an observer cannot average the noise
//!    away over many exchanges — the standard defense against repeated-
//!    query deanonymization.
//!
//! Plausible deniability: with flip probability `ε`, an observed *like*
//! carries likelihood ratio `(1 − ε/2) / (ε/2)` instead of certainty.

use crate::item::ItemId;
use crate::profile::{Profile, ProfileEntry};
use serde::{Deserialize, Serialize};
use whatsup_gossip::NodeId;

/// Obfuscation policy for everything a node shares.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Obfuscation {
    /// Randomized-response noise level in `[0, 1]`: the probability that an
    /// entry's shared score is replaced by a coin flip. 0 = share truth.
    pub epsilon: f64,
    /// Per-node secret seeding the deterministic coins. In a deployment
    /// this is local and never shared.
    pub secret: u64,
}

impl Obfuscation {
    /// No obfuscation (the paper's base system).
    pub fn off() -> Self {
        Self {
            epsilon: 0.0,
            secret: 0,
        }
    }

    /// Randomized response at noise level `epsilon`.
    pub fn randomized_response(epsilon: f64, secret: u64) -> Self {
        assert!((0.0..=1.0).contains(&epsilon), "epsilon is a probability");
        Self { epsilon, secret }
    }

    pub fn is_off(&self) -> bool {
        self.epsilon <= 0.0
    }

    /// The score the node *shares* for an entry (its true score, or a
    /// consistent lie).
    pub fn shared_score(&self, node: NodeId, item: ItemId, truth: f32) -> f32 {
        if self.is_off() {
            return truth;
        }
        // Two independent deterministic coins: replace? and flip-value.
        let h = coin(self.secret, node, item);
        let replace = (h >> 32) as f64 / u32::MAX as f64; // uniform [0,1]
        if replace >= self.epsilon {
            truth
        } else if h & 1 == 0 {
            1.0
        } else {
            0.0
        }
    }

    /// The obfuscated snapshot of a profile, as shared in gossip
    /// descriptors and folded into item profiles.
    pub fn share(&self, node: NodeId, profile: &Profile) -> Profile {
        if self.is_off() {
            return profile.clone();
        }
        Profile::from_entries(profile.entries().iter().map(|e| ProfileEntry {
            item: e.item,
            timestamp: e.timestamp,
            score: self.shared_score(node, e.item, e.score),
        }))
    }

    /// Expected fraction of shared entries whose reported opinion differs
    /// from the truth (binary profiles): `ε/2`.
    pub fn expected_flip_rate(&self) -> f64 {
        self.epsilon / 2.0
    }
}

/// Deterministic per-(secret, node, item) coin: SplitMix64 avalanche.
#[inline]
fn coin(secret: u64, node: NodeId, item: ItemId) -> u64 {
    let mut x = secret ^ (node as u64).rotate_left(17) ^ item.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn liked(items: &[ItemId]) -> Profile {
        Profile::from_entries(items.iter().map(|&i| ProfileEntry {
            item: i,
            timestamp: 3,
            score: 1.0,
        }))
    }

    #[test]
    fn off_is_identity() {
        let p = liked(&[1, 2, 3]);
        let o = Obfuscation::off();
        assert_eq!(o.share(5, &p), p);
        assert!(o.is_off());
    }

    #[test]
    fn full_noise_flips_about_half() {
        let items: Vec<ItemId> = (0..2000).collect();
        let p = liked(&items);
        let o = Obfuscation::randomized_response(1.0, 42);
        let shared = o.share(5, &p);
        let flips = shared.entries().iter().filter(|e| e.score < 0.5).count() as f64 / 2000.0;
        assert!(
            (flips - o.expected_flip_rate()).abs() < 0.05,
            "flip rate {flips} should be ≈ {}",
            o.expected_flip_rate()
        );
    }

    #[test]
    fn lies_are_consistent_across_calls() {
        let p = liked(&(0..100).collect::<Vec<_>>());
        let o = Obfuscation::randomized_response(0.5, 7);
        assert_eq!(o.share(3, &p), o.share(3, &p), "same node shares same lies");
    }

    #[test]
    fn different_nodes_lie_differently() {
        let p = liked(&(0..200).collect::<Vec<_>>());
        let o = Obfuscation::randomized_response(0.8, 7);
        assert_ne!(o.share(3, &p), o.share(4, &p));
    }

    #[test]
    fn structure_is_preserved() {
        // Obfuscation changes scores, never the item set or timestamps.
        let p = liked(&[5, 9, 11]);
        let o = Obfuscation::randomized_response(1.0, 13);
        let s = o.share(2, &p);
        assert_eq!(s.len(), p.len());
        for (a, b) in s.entries().iter().zip(p.entries()) {
            assert_eq!(a.item, b.item);
            assert_eq!(a.timestamp, b.timestamp);
        }
    }

    #[test]
    #[should_panic]
    fn epsilon_must_be_probability() {
        let _ = Obfuscation::randomized_response(1.5, 0);
    }

    proptest! {
        #[test]
        fn shared_scores_are_binary_for_binary_profiles(
            items in prop::collection::btree_set(0u64..500, 1..50),
            epsilon in 0.0f64..1.0,
            secret in 0u64..u64::MAX,
        ) {
            let p = liked(&items.iter().copied().collect::<Vec<_>>());
            let o = Obfuscation::randomized_response(epsilon, secret);
            let s = o.share(1, &p);
            for e in s.entries() {
                prop_assert!(e.score == 0.0 || e.score == 1.0);
            }
        }

        #[test]
        fn flip_rate_scales_with_epsilon(secret in 0u64..1000) {
            let items: Vec<ItemId> = (0..1500).collect();
            let p = liked(&items);
            let lo = Obfuscation::randomized_response(0.2, secret);
            let hi = Obfuscation::randomized_response(0.9, secret);
            let flips = |o: &Obfuscation| {
                o.share(1, &p).entries().iter().filter(|e| e.score < 0.5).count()
            };
            prop_assert!(flips(&hi) > flips(&lo));
        }
    }
}
