//! Protocol messages: what a node emits and consumes.
//!
//! The sans-io node returns [`OutMessage`]s; the driving layer (simulator or
//! network runtime) is responsible for delivery, loss and latency.

use crate::item::ItemHeader;
use crate::profile::SharedProfile;
use serde::{Deserialize, Serialize};
use whatsup_gossip::{Descriptor, NodeId};

/// A copy of a news item in flight (Algorithm 2's
/// `(<idI, tI>, P^I, dI)` triple).
///
/// `hops` is measurement instrumentation (Fig. 6 plots dissemination actions
/// by hop distance); it does not influence any forwarding decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NewsMessage {
    pub header: ItemHeader,
    /// The aggregated item profile, shared copy-on-write: fanning one
    /// reception out to `fLIKE` targets clones the `Arc`, not the entries;
    /// the next hop that actually aggregates copies once via
    /// [`Profile::aggregated_with`].
    pub profile: SharedProfile,
    /// Dislike counter `dI`.
    pub dislikes: u8,
    /// Hop distance from the source (0 at publication).
    pub hops: u16,
}

/// Wire payloads of the three protocols sharing the node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Payload {
    /// RPS push (half view + fresh self-descriptor).
    RpsRequest(Vec<Descriptor<SharedProfile>>),
    /// RPS pull reply.
    RpsResponse(Vec<Descriptor<SharedProfile>>),
    /// WUP clustering push (entire view + fresh self-descriptor).
    WupRequest(Vec<Descriptor<SharedProfile>>),
    /// WUP clustering pull reply.
    WupResponse(Vec<Descriptor<SharedProfile>>),
    /// BEEP news forward.
    News(NewsMessage),
}

impl Payload {
    /// Protocol family of this payload, for traffic accounting.
    pub fn kind(&self) -> PayloadKind {
        match self {
            Payload::RpsRequest(_) | Payload::RpsResponse(_) => PayloadKind::Rps,
            Payload::WupRequest(_) | Payload::WupResponse(_) => PayloadKind::Wup,
            Payload::News(_) => PayloadKind::News,
        }
    }
}

/// Coarse message family used by the bandwidth and message-count metrics
/// (the paper reports WUP vs BEEP traffic separately, Fig. 8b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PayloadKind {
    Rps,
    Wup,
    News,
}

/// Stable wire identifiers shared by every transport that serializes
/// payloads (the `whatsup-net` codec and the simulator's shard-exchange
/// bundles). These are a compatibility contract: never renumber an existing
/// id, only append new ones.
pub mod wire {
    /// RPS push (half view + fresh self-descriptor).
    pub const RPS_REQUEST: u8 = 1;
    /// RPS pull reply.
    pub const RPS_RESPONSE: u8 = 2;
    /// WUP clustering push.
    pub const WUP_REQUEST: u8 = 3;
    /// WUP clustering pull reply.
    pub const WUP_RESPONSE: u8 = 4;
    /// BEEP news forward (full item content on the wire).
    pub const NEWS: u8 = 5;
    /// A mailbox bundle: a batch of addressed frames exchanged between
    /// engine shards. Not a protocol-level payload — bundles never nest and
    /// never reach a node.
    pub const MAILBOX_BUNDLE: u8 = 6;
    /// Anti-entropy digest: per-node `(incarnation, max version)` summary
    /// opening a scuttlebutt reconciliation round.
    pub const DIGEST: u8 = 7;
    /// Anti-entropy delta: versioned entries newer than the peer's digest,
    /// greedily packed to a datagram budget.
    pub const DELTA: u8 = 8;
}

impl Payload {
    /// The stable wire id of this payload's frame (see [`wire`]).
    pub fn wire_id(&self) -> u8 {
        match self {
            Payload::RpsRequest(_) => wire::RPS_REQUEST,
            Payload::RpsResponse(_) => wire::RPS_RESPONSE,
            Payload::WupRequest(_) => wire::WUP_REQUEST,
            Payload::WupResponse(_) => wire::WUP_RESPONSE,
            Payload::News(_) => wire::NEWS,
        }
    }
}

/// An outgoing message: destination plus payload. The sender id is implicit
/// (the node that returned it).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OutMessage {
    pub to: NodeId,
    pub payload: Payload,
}

impl OutMessage {
    pub fn new(to: NodeId, payload: Payload) -> Self {
        Self { to, payload }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Profile;

    #[test]
    fn kinds_classify() {
        let news = Payload::News(NewsMessage {
            header: ItemHeader {
                id: 1,
                created_at: 0,
            },
            profile: SharedProfile::new(Profile::new()),
            dislikes: 0,
            hops: 0,
        });
        assert_eq!(news.kind(), PayloadKind::News);
        assert_eq!(Payload::RpsRequest(vec![]).kind(), PayloadKind::Rps);
        assert_eq!(Payload::RpsResponse(vec![]).kind(), PayloadKind::Rps);
        assert_eq!(Payload::WupRequest(vec![]).kind(), PayloadKind::Wup);
        assert_eq!(Payload::WupResponse(vec![]).kind(), PayloadKind::Wup);
    }

    #[test]
    fn wire_ids_are_stable_and_distinct() {
        let news = Payload::News(NewsMessage {
            header: ItemHeader {
                id: 1,
                created_at: 0,
            },
            profile: SharedProfile::new(Profile::new()),
            dislikes: 0,
            hops: 0,
        });
        let ids = [
            Payload::RpsRequest(vec![]).wire_id(),
            Payload::RpsResponse(vec![]).wire_id(),
            Payload::WupRequest(vec![]).wire_id(),
            Payload::WupResponse(vec![]).wire_id(),
            news.wire_id(),
        ];
        // Pinned values: renumbering is a wire-format break.
        assert_eq!(ids, [1, 2, 3, 4, 5]);
        assert_eq!(wire::MAILBOX_BUNDLE, 6);
        assert_eq!(wire::DIGEST, 7);
        assert_eq!(wire::DELTA, 8);
    }
}
