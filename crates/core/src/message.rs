//! Protocol messages: what a node emits and consumes.
//!
//! The sans-io node returns [`OutMessage`]s; the driving layer (simulator or
//! network runtime) is responsible for delivery, loss and latency.

use crate::item::ItemHeader;
use crate::profile::{Profile, SharedProfile};
use serde::{Deserialize, Serialize};
use whatsup_gossip::{Descriptor, NodeId};

/// A copy of a news item in flight (Algorithm 2's
/// `(<idI, tI>, P^I, dI)` triple).
///
/// `hops` is measurement instrumentation (Fig. 6 plots dissemination actions
/// by hop distance); it does not influence any forwarding decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NewsMessage {
    pub header: ItemHeader,
    /// The per-copy aggregated item profile.
    pub profile: Profile,
    /// Dislike counter `dI`.
    pub dislikes: u8,
    /// Hop distance from the source (0 at publication).
    pub hops: u16,
}

/// Wire payloads of the three protocols sharing the node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Payload {
    /// RPS push (half view + fresh self-descriptor).
    RpsRequest(Vec<Descriptor<SharedProfile>>),
    /// RPS pull reply.
    RpsResponse(Vec<Descriptor<SharedProfile>>),
    /// WUP clustering push (entire view + fresh self-descriptor).
    WupRequest(Vec<Descriptor<SharedProfile>>),
    /// WUP clustering pull reply.
    WupResponse(Vec<Descriptor<SharedProfile>>),
    /// BEEP news forward.
    News(NewsMessage),
}

impl Payload {
    /// Protocol family of this payload, for traffic accounting.
    pub fn kind(&self) -> PayloadKind {
        match self {
            Payload::RpsRequest(_) | Payload::RpsResponse(_) => PayloadKind::Rps,
            Payload::WupRequest(_) | Payload::WupResponse(_) => PayloadKind::Wup,
            Payload::News(_) => PayloadKind::News,
        }
    }
}

/// Coarse message family used by the bandwidth and message-count metrics
/// (the paper reports WUP vs BEEP traffic separately, Fig. 8b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PayloadKind {
    Rps,
    Wup,
    News,
}

/// An outgoing message: destination plus payload. The sender id is implicit
/// (the node that returned it).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OutMessage {
    pub to: NodeId,
    pub payload: Payload,
}

impl OutMessage {
    pub fn new(to: NodeId, payload: Payload) -> Self {
        Self { to, payload }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_classify() {
        let news = Payload::News(NewsMessage {
            header: ItemHeader {
                id: 1,
                created_at: 0,
            },
            profile: Profile::new(),
            dislikes: 0,
            hops: 0,
        });
        assert_eq!(news.kind(), PayloadKind::News);
        assert_eq!(Payload::RpsRequest(vec![]).kind(), PayloadKind::Rps);
        assert_eq!(Payload::RpsResponse(vec![]).kind(), PayloadKind::Rps);
        assert_eq!(Payload::WupRequest(vec![]).kind(), PayloadKind::Wup);
        assert_eq!(Payload::WupResponse(vec![]).kind(), PayloadKind::Wup);
    }
}
