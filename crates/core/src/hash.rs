//! 64-bit FNV-1a content hashing.
//!
//! The paper (§II-A) identifies a news item by an 8-byte hash that "is not
//! transmitted but computed by nodes when they receive the item". FNV-1a is
//! small, allocation-free and byte-order independent — exactly what a wire
//! protocol wants for a content id. (HashDoS resistance is irrelevant here:
//! the id is a content digest, not a hash-table key under adversarial
//! control.)

/// FNV-1a offset basis (64-bit).
const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hashes a byte slice with FNV-1a (64-bit).
#[inline]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Incremental FNV-1a hasher for hashing an item's fields without
/// concatenating them into a temporary buffer.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Self(OFFSET)
    }
}

impl Fnv1a {
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds bytes into the hash.
    #[inline]
    pub fn update(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(PRIME);
        }
        self
    }

    /// Feeds a length-prefixed field, so that ("ab","c") and ("a","bc")
    /// hash differently.
    #[inline]
    pub fn update_field(&mut self, bytes: &[u8]) -> &mut Self {
        self.update(&(bytes.len() as u32).to_le_bytes());
        self.update(bytes)
    }

    /// Final hash value.
    #[inline]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// SplitMix64 finalizer: one avalanche round, full 64-bit diffusion.
#[inline]
fn splitmix64(v: u64) -> u64 {
    let mut z = v.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic integer hasher for id-keyed tables on hot paths (the
/// per-node `seen` set, the shard item registry). One SplitMix64 round
/// replaces SipHash: these keys are internal ids, not adversarial input, so
/// HashDoS resistance buys nothing, and the default hasher's per-lookup
/// cost is measurable at millions of receptions per run. Table iteration
/// order is never observable (checkpoints sort before export), so swapping
/// the hasher cannot perturb any report.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdHasher(u64);

impl std::hash::Hasher for IdHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = splitmix64(self.0 ^ v);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (unused by the integer keys this is built for).
        self.0 = splitmix64(self.0 ^ fnv1a64(bytes));
    }
}

/// `BuildHasher` plugging [`IdHasher`] into `HashSet`/`HashMap`.
pub type BuildIdHasher = std::hash::BuildHasherDefault<IdHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_hasher_spreads_dense_ids() {
        use std::hash::Hasher;
        let h = |v: u64| {
            let mut s = IdHasher::default();
            s.write_u64(v);
            s.finish()
        };
        let distinct: std::collections::HashSet<u64> = (0..1000).map(h).collect();
        assert_eq!(distinct.len(), 1000, "dense ids must not collide");
        assert_eq!(h(7), h(7), "pure function of the key");
    }

    #[test]
    fn known_vectors() {
        // Reference values for FNV-1a 64-bit.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut h = Fnv1a::new();
        h.update(b"foo").update(b"bar");
        assert_eq!(h.finish(), fnv1a64(b"foobar"));
    }

    #[test]
    fn field_prefix_disambiguates() {
        let mut a = Fnv1a::new();
        a.update_field(b"ab").update_field(b"c");
        let mut b = Fnv1a::new();
        b.update_field(b"a").update_field(b"bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn distinct_inputs_differ() {
        assert_ne!(fnv1a64(b"breaking news"), fnv1a64(b"breaking news!"));
    }
}
