//! 64-bit FNV-1a content hashing.
//!
//! The paper (§II-A) identifies a news item by an 8-byte hash that "is not
//! transmitted but computed by nodes when they receive the item". FNV-1a is
//! small, allocation-free and byte-order independent — exactly what a wire
//! protocol wants for a content id. (HashDoS resistance is irrelevant here:
//! the id is a content digest, not a hash-table key under adversarial
//! control.)

/// FNV-1a offset basis (64-bit).
const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hashes a byte slice with FNV-1a (64-bit).
#[inline]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Incremental FNV-1a hasher for hashing an item's fields without
/// concatenating them into a temporary buffer.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Self(OFFSET)
    }
}

impl Fnv1a {
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds bytes into the hash.
    #[inline]
    pub fn update(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(PRIME);
        }
        self
    }

    /// Feeds a length-prefixed field, so that ("ab","c") and ("a","bc")
    /// hash differently.
    #[inline]
    pub fn update_field(&mut self, bytes: &[u8]) -> &mut Self {
        self.update(&(bytes.len() as u32).to_le_bytes());
        self.update(bytes)
    }

    /// Final hash value.
    #[inline]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Reference values for FNV-1a 64-bit.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut h = Fnv1a::new();
        h.update(b"foo").update(b"bar");
        assert_eq!(h.finish(), fnv1a64(b"foobar"));
    }

    #[test]
    fn field_prefix_disambiguates() {
        let mut a = Fnv1a::new();
        a.update_field(b"ab").update_field(b"c");
        let mut b = Fnv1a::new();
        b.update_field(b"a").update_field(b"bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn distinct_inputs_differ() {
        assert_ne!(fnv1a64(b"breaking news"), fnv1a64(b"breaking news!"));
    }
}
