//! The WhatsUp node: WUP + BEEP composed into one sans-io state machine.
//!
//! A node owns its user profile, the two gossip layers (RPS + WUP
//! clustering) and the set of item ids it has already received (SIR
//! "removed" state). It exposes three entry points —
//! [`WhatsUpNode::on_cycle`], [`WhatsUpNode::on_message`] and
//! [`WhatsUpNode::publish`] — each returning the messages to send. The
//! caller decides what "a cycle" and "delivery" mean: the simulator makes
//! them deterministic rounds, the network runtimes make them timers and
//! UDP datagrams.
//!
//! User opinions come from an [`Opinions`] oracle: in the evaluation this is
//! the dataset ground truth (a user's reaction is a fixed property of the
//! (user, item) pair, as in the paper's survey replay); in a live deployment
//! it would be the like/dislike buttons.

use crate::beep::{self, ForwardDecision};
use crate::bootstrap::{most_popular_items, ColdStart};
use crate::item::{ItemId, NewsItem, Timestamp};
use crate::message::{NewsMessage, OutMessage, Payload};
use crate::obfuscation::Obfuscation;
use crate::params::Params;
use crate::profile::{Profile, ProfileEntry, SharedProfile};
use crate::seen::SeenSet;
use rand::Rng;
use serde::{Deserialize, Serialize};
use whatsup_gossip::{Clustering, ClusteringConfig, Descriptor, NodeId, Rps};

/// Oracle answering "would this user like this item?" (the `iLike` predicate
/// of Algorithms 1–2).
pub trait Opinions {
    fn likes(&self, node: NodeId, item: ItemId) -> bool;
}

impl<F: Fn(NodeId, ItemId) -> bool> Opinions for F {
    fn likes(&self, node: NodeId, item: ItemId) -> bool {
        self(node, item)
    }
}

/// Per-node traffic and dissemination counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeStats {
    /// RPS messages sent (requests + responses).
    pub rps_sent: u64,
    /// WUP clustering messages sent (requests + responses).
    pub wup_sent: u64,
    /// News copies sent (BEEP forwards, including publications).
    pub news_sent: u64,
    /// First receptions of a news item.
    pub news_received: u64,
    /// Duplicate copies dropped.
    pub news_duplicates: u64,
    /// First receptions the user liked.
    pub news_liked: u64,
    /// Items published by this node.
    pub published: u64,
}

impl NodeStats {
    /// Total messages sent by this node, all protocols.
    pub fn total_sent(&self) -> u64 {
        self.rps_sent + self.wup_sent + self.news_sent
    }
}

/// Everything a [`WhatsUpNode`] remembers, in a canonical serializable
/// shape: checkpoint support for the simulator's worker supervision (and
/// any future migration of live nodes). Produced by
/// [`WhatsUpNode::export_state`], consumed by [`WhatsUpNode::from_state`].
#[derive(Debug, Clone, PartialEq)]
pub struct NodeState {
    /// True profile entries, ascending item-id order (the [`Profile`]
    /// invariant).
    pub profile: Vec<ProfileEntry>,
    /// RPS view entries in live iteration order, ages preserved.
    pub rps_view: Vec<Descriptor<SharedProfile>>,
    /// WUP view entries in live iteration order, ages preserved.
    pub wup_view: Vec<Descriptor<SharedProfile>>,
    /// Item ids already received, ascending (canonicalized from the live
    /// [`SeenSet`] so identical nodes export identical states).
    pub seen: Vec<ItemId>,
}

/// The per-user WhatsUp protocol stack.
///
/// Per-node counters ([`NodeStats`]) are *not* stored here: the node is
/// the hot-loop unit and the counters are cold, so callers own them in
/// SoA arrays (one `Vec<NodeStats>` per shard in the simulator) and pass
/// `&mut NodeStats` into each entry point.
#[derive(Debug, Clone)]
pub struct WhatsUpNode {
    id: NodeId,
    params: Params,
    rps: Rps<SharedProfile>,
    wup: Clustering<SharedProfile>,
    /// The true profile, copy-on-write. With obfuscation off the disclosed
    /// profile *is* this allocation — descriptors hand out `Arc` clones,
    /// and the next mutation clones via `Arc::make_mut` only while a
    /// recipient still holds the snapshot.
    profile: SharedProfile,
    obfuscation: Obfuscation,
    /// Memoized disclosed-profile snapshot under obfuscation (the
    /// obfuscation-off path shares [`Self::profile`] directly and never
    /// uses this); invalidated whenever `profile` mutates.
    shared_cache: Option<SharedProfile>,
    /// Memoized view-merge similarity scores, keyed by candidate-snapshot
    /// identity (`Arc` address) and invalidated with [`Self::shared_cache`].
    /// The two WUP merges of one gossip phase rank mostly the same
    /// candidates (own view + the full RPS view) against an unchanged
    /// profile; a hit returns the identical `f64` the metric would
    /// recompute. Each entry pins its snapshot alive, so an address can
    /// never be reused by a different profile while it is a key here.
    // lint:allow(det-map) BuildIdHasher keys, probe-only memo; never iterated
    score_cache: std::collections::HashMap<usize, (SharedProfile, f64), crate::hash::BuildIdHasher>,
    seen: SeenSet,
}

impl WhatsUpNode {
    /// Creates a node with empty views and an empty profile.
    ///
    /// # Panics
    /// Panics if `params` violates the Table II invariants
    /// (see [`Params::validate`]).
    pub fn new(id: NodeId, params: Params) -> Self {
        params.validate().expect("invalid WhatsUp parameters");
        let rps = Rps::new(id, params.rps);
        let wup = Clustering::new(
            id,
            ClusteringConfig {
                view_size: params.wup_view_size,
            },
        );
        // Per-node secret: local, never shared (id-derived here; a real
        // deployment would draw it from the OS).
        let obfuscation = Obfuscation::randomized_response(
            params.obfuscation_epsilon,
            (id as u64).wrapping_mul(0xd6e8_feb8_6659_fd93) ^ 0x0b5e_55ed,
        );
        Self {
            id,
            params,
            rps,
            wup,
            profile: SharedProfile::new(Profile::new()),
            obfuscation,
            shared_cache: None,
            score_cache: std::collections::HashMap::default(), // lint:allow(det-map) see field
            seen: SeenSet::new(),
        }
    }

    /// The profile this node *discloses*: its true profile, or the
    /// consistent randomized-response snapshot when obfuscation is on
    /// (§VII privacy extension). Everything that leaves the node — gossip
    /// descriptors and item-profile contributions — goes through here;
    /// local forwarding decisions keep using the true profile.
    ///
    /// The snapshot is memoized until the profile next mutates; obfuscation
    /// is a pure function of `(secret, node, profile)`, so the cache is
    /// exact.
    fn shared_profile(&mut self) -> SharedProfile {
        if self.obfuscation.is_off() {
            // The disclosed profile *is* the true profile: share the
            // allocation instead of copying it (see the `profile` field).
            return SharedProfile::clone(&self.profile);
        }
        if let Some(cached) = &self.shared_cache {
            return SharedProfile::clone(cached);
        }
        let shared = SharedProfile::new(self.obfuscation.share(self.id, &self.profile));
        self.shared_cache = Some(SharedProfile::clone(&shared));
        shared
    }

    /// Marks the disclosed-profile snapshot and the merge-score memo stale
    /// after a profile mutation. Dropping the memo's table (rather than
    /// `clear`, which keeps it) releases both the high-water bucket array
    /// and the pinned candidate snapshots; the next gossip phase rebuilds
    /// a table sized to the live candidate set.
    fn invalidate_shared(&mut self) {
        self.shared_cache = None;
        self.score_cache = std::collections::HashMap::default(); // lint:allow(det-map) see field
    }

    /// Releases memory that stopped paying its way at the last cycle
    /// boundary. Called by the engine at each cycle start; reports are
    /// byte-identical with or without it.
    ///
    /// * Capacity slack: profile entry slots doubled by sorted inserts and
    ///   seen-set run slack from merges are trimmed to fit. The profile is
    ///   only trimmed while uniquely owned — the within-cycle phase order
    ///   guarantees that here (gossip discloses *before* news mutates, and
    ///   the first mutation un-shares via `Arc::make_mut`); trimming a
    ///   shared allocation would copy it instead.
    /// * The merge-score memo is dropped outright. Its hits are the two
    ///   WUP merges of a gossip phase ranking the same candidates — a
    ///   within-cycle pattern — while across cycles every retained entry
    ///   pins a candidate snapshot whose view slot may long since have
    ///   been replaced. The memo is probe-only (recomputing a miss yields
    ///   the identical `f64`), so eviction can never change results.
    pub fn compact(&mut self) {
        if let Some(p) = SharedProfile::get_mut(&mut self.profile) {
            p.trim_capacity();
        }
        self.seen.trim_capacity();
        self.drop_score_memo();
    }

    /// Drops the merge-score memo. Safe at any point — the memo is
    /// probe-only (recomputing a miss yields the identical `f64`), so
    /// eviction can never change results. The engine calls this when the
    /// gossip phase ends (the memo's hits all happen within one gossip
    /// phase), so the news phase's growth reuses the freed memory instead
    /// of stacking on top of a dead table and its pinned snapshots.
    pub fn drop_score_memo(&mut self) {
        self.score_cache = std::collections::HashMap::default(); // lint:allow(det-map) see field
    }

    pub fn id(&self) -> NodeId {
        self.id
    }

    pub fn params(&self) -> &Params {
        &self.params
    }

    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// Current WUP (implicit social network) neighbors.
    pub fn wup_neighbor_ids(&self) -> Vec<NodeId> {
        self.wup.view().node_ids().collect()
    }

    /// Current RPS (random overlay) neighbors.
    pub fn rps_neighbor_ids(&self) -> Vec<NodeId> {
        self.rps.view().node_ids().collect()
    }

    /// Whether this node already received (or published) `item`.
    pub fn has_seen(&self, item: ItemId) -> bool {
        self.seen.contains(item)
    }

    /// Mean similarity between the node's profile and its WUP view's
    /// profile *snapshots* (the node-local view of Fig. 7's y-axis).
    pub fn avg_wup_similarity(&self) -> f64 {
        let entries = self.wup.view().entries();
        if entries.is_empty() {
            return 0.0;
        }
        let sum: f64 = entries
            .iter()
            .map(|d| self.params.metric.score(&self.profile, &d.payload))
            .sum();
        sum / entries.len() as f64
    }

    /// Seeds both views directly — test/bootstrap helper. Each profile is
    /// wrapped in its own allocation; bulk seeding with a shared payload
    /// (e.g. one empty profile for a whole shard's bootstrap) goes through
    /// [`Self::seed_views_arcs`].
    pub fn seed_views(
        &mut self,
        rps: impl IntoIterator<Item = (NodeId, Profile)>,
        wup: impl IntoIterator<Item = (NodeId, Profile)>,
    ) {
        self.seed_views_arcs(
            rps.into_iter().map(|(n, p)| (n, SharedProfile::new(p))),
            wup.into_iter().map(|(n, p)| (n, SharedProfile::new(p))),
        );
    }

    /// Seeds both views from already-shared profile snapshots, so callers
    /// seeding many nodes with the same payload share one allocation.
    pub fn seed_views_arcs(
        &mut self,
        rps: impl IntoIterator<Item = (NodeId, SharedProfile)>,
        wup: impl IntoIterator<Item = (NodeId, SharedProfile)>,
    ) {
        self.rps
            .seed(rps.into_iter().map(|(n, p)| Descriptor::fresh(n, p)));
        self.wup
            .seed(wup.into_iter().map(|(n, p)| Descriptor::fresh(n, p)));
    }

    /// Cold start (§II-D): inherit the contact's views and rate the most
    /// popular items found in the inherited RPS view.
    pub fn cold_start(&mut self, inherited: ColdStart, opinions: &impl Opinions) {
        let popular = most_popular_items(&inherited.rps_view, self.params.cold_start_items);
        let profile = SharedProfile::make_mut(&mut self.profile);
        for (item, ts) in popular {
            let liked = opinions.likes(self.id, item);
            profile.rate(item, ts, liked);
            self.seen.insert(item);
        }
        self.invalidate_shared();
        self.rps.seed(inherited.rps_view);
        self.wup.seed(inherited.wup_view);
    }

    /// Snapshot of this node's views for a joiner to inherit.
    pub fn views_snapshot(&self) -> ColdStart {
        ColdStart {
            rps_view: self.rps.view().entries().to_vec(),
            wup_view: self.wup.view().entries().to_vec(),
        }
    }

    /// Memory accounting (diagnostics): own-profile heap bytes, seen-set
    /// heap bytes, per-node cache/bookkeeping bytes (score memo + view
    /// vectors), and a visit of every profile snapshot this node pins —
    /// view descriptors, the score-memo keys, the disclosed-snapshot memo.
    /// Visited `Arc`s may repeat; callers dedup by address.
    #[doc(hidden)]
    pub fn debug_heap_stats(&self, visit: &mut dyn FnMut(&SharedProfile)) -> (usize, usize, usize) {
        for d in self.rps.view().entries() {
            visit(&d.payload);
        }
        for d in self.wup.view().entries() {
            visit(&d.payload);
        }
        for (snapshot, _) in self.score_cache.values() {
            visit(snapshot);
        }
        if let Some(c) = &self.shared_cache {
            visit(c);
        }
        let descriptor = std::mem::size_of::<whatsup_gossip::Descriptor<SharedProfile>>();
        let caches = self.score_cache.capacity()
            * (std::mem::size_of::<(usize, (SharedProfile, f64))>() + 1)
            + (self.rps.view().entries().len() + self.wup.view().entries().len()) * descriptor;
        (
            self.profile.entries_capacity() * std::mem::size_of::<crate::profile::ProfileEntry>(),
            self.seen.capacity_bytes(),
            caches,
        )
    }

    /// Full behavioral state of this node, for checkpointing. Everything
    /// *not* captured here — the obfuscation secret, the memoized
    /// disclosed-profile snapshot — is a pure function of `(id, params,
    /// profile)` and is rebuilt by [`WhatsUpNode::from_state`].
    pub fn export_state(&self) -> NodeState {
        NodeState {
            profile: self.profile.entries().to_vec(),
            rps_view: self.rps.view().entries().to_vec(),
            wup_view: self.wup.view().entries().to_vec(),
            seen: self.seen.to_sorted_vec(),
        }
    }

    /// Rebuilds a node from an exported state, bit-exactly: the view entry
    /// *order* is preserved (views append while under capacity, and a
    /// checkpointed view never exceeds its capacity or contains the owner),
    /// descriptor ages are kept as captured, and the profile norm is
    /// recomputed from the exact same entries. A restored node is
    /// behaviorally indistinguishable from the one that was exported.
    ///
    /// # Panics
    /// Panics if `params` violates the Table II invariants.
    pub fn from_state(id: NodeId, params: Params, state: NodeState) -> Self {
        let mut node = Self::new(id, params);
        node.profile = SharedProfile::new(Profile::from_entries(state.profile));
        node.rps.seed(state.rps_view);
        node.wup.seed(state.wup_view);
        node.seen = SeenSet::from_sorted(state.seen);
        node
    }

    /// One gossip cycle (§II): purge the profile window, then initiate one
    /// RPS and one WUP exchange towards the oldest view entries.
    pub fn on_cycle(
        &mut self,
        now: Timestamp,
        stats: &mut NodeStats,
        rng: &mut impl Rng,
    ) -> Vec<OutMessage> {
        // Copy-on-write: touch the profile allocation only when the purge
        // would actually remove an entry.
        let cutoff = now.saturating_sub(self.params.profile_window);
        if self.profile.entries().iter().any(|e| e.timestamp < cutoff) {
            SharedProfile::make_mut(&mut self.profile).purge_older_than(cutoff);
            self.invalidate_shared();
        }
        let mut out = Vec::with_capacity(2);
        let shared = self.shared_profile();
        // The RPS layer may run at a slower period (Table II: RPSf = 1h).
        if now.is_multiple_of(self.params.rps_period) {
            if let Some((partner, payload)) = self.rps.initiate(SharedProfile::clone(&shared), rng)
            {
                stats.rps_sent += 1;
                out.push(OutMessage::new(partner, Payload::RpsRequest(payload)));
            }
        }
        if let Some((partner, payload)) = self.wup.initiate(shared) {
            stats.wup_sent += 1;
            out.push(OutMessage::new(partner, Payload::WupRequest(payload)));
        }
        out
    }

    /// Handles one delivered message, returning any replies/forwards.
    ///
    /// Messages claiming to come from this node itself are dropped: they
    /// can only be delivery loops or spoofing, and answering one would make
    /// the node gossip with itself.
    pub fn on_message(
        &mut self,
        from: NodeId,
        payload: Payload,
        now: Timestamp,
        opinions: &impl Opinions,
        stats: &mut NodeStats,
        rng: &mut impl Rng,
    ) -> Vec<OutMessage> {
        if from == self.id {
            return Vec::new();
        }
        match payload {
            Payload::RpsRequest(descs) => {
                let shared = self.shared_profile();
                let resp = self.rps.on_request(descs, shared, rng);
                stats.rps_sent += 1;
                vec![OutMessage::new(from, Payload::RpsResponse(resp))]
            }
            Payload::RpsResponse(descs) => {
                self.rps.on_response(descs, rng);
                Vec::new()
            }
            Payload::WupRequest(descs) => {
                let metric = self.params.metric;
                let shared = self.shared_profile();
                // Rank candidates against the *true* profile (split borrow:
                // no clone); the payload that travels is the (possibly
                // obfuscated) shared one.
                let Self {
                    wup,
                    rps,
                    profile,
                    score_cache,
                    ..
                } = self;
                let profile: &Profile = profile;
                let cache = std::cell::RefCell::new(score_cache);
                let sim = |_own: &SharedProfile, cand: &SharedProfile| {
                    memoized_score(&cache, metric, profile, cand)
                };
                let resp = wup.on_request(descs, rps.view().entries(), shared, &sim);
                stats.wup_sent += 1;
                vec![OutMessage::new(from, Payload::WupResponse(resp))]
            }
            Payload::WupResponse(descs) => {
                let metric = self.params.metric;
                let shared = self.shared_profile();
                let Self {
                    wup,
                    rps,
                    profile,
                    score_cache,
                    ..
                } = self;
                let profile: &Profile = profile;
                let cache = std::cell::RefCell::new(score_cache);
                let sim = |_own: &SharedProfile, cand: &SharedProfile| {
                    memoized_score(&cache, metric, profile, cand)
                };
                wup.on_response(descs, rps.view().entries(), &shared, &sim);
                Vec::new()
            }
            Payload::News(msg) => self.handle_news(msg, now, opinions, stats, rng),
        }
    }

    /// Publishes a new item (Algorithm 1, `generateNewsItem`): the source
    /// rates it *liked*, folds its whole profile — including the fresh
    /// rating — into the new item profile, and BEEP-forwards.
    pub fn publish(
        &mut self,
        item: &NewsItem,
        now: Timestamp,
        stats: &mut NodeStats,
        rng: &mut impl Rng,
    ) -> Vec<OutMessage> {
        let header = item.header();
        self.seen.insert(header.id);
        stats.published += 1;
        SharedProfile::make_mut(&mut self.profile).rate(header.id, header.created_at, true);
        self.invalidate_shared();
        let mut item_profile = Profile::new();
        item_profile.aggregate_user_profile(&self.shared_profile());
        item_profile.purge_older_than(now.saturating_sub(self.params.profile_window));
        let decision = beep::decide(
            &self.params.beep,
            true,
            0,
            &item_profile,
            self.wup.view(),
            self.rps.view(),
            self.params.metric,
            rng,
        );
        self.emit_news(
            header.into_message(SharedProfile::new(item_profile), decision.dislikes, 0),
            decision,
            stats,
        )
    }

    /// Algorithm 1 (receive path) + Algorithm 2 (forward).
    fn handle_news(
        &mut self,
        mut msg: NewsMessage,
        now: Timestamp,
        opinions: &impl Opinions,
        stats: &mut NodeStats,
        rng: &mut impl Rng,
    ) -> Vec<OutMessage> {
        let id = msg.header.id;
        // SIR: a node receiving an item it has already received drops it.
        if !self.seen.insert(id) {
            stats.news_duplicates += 1;
            return Vec::new();
        }
        stats.news_received += 1;
        let liked = opinions.likes(self.id, id);
        if liked {
            stats.news_liked += 1;
            // Fold the *pre-rating* profile into the item profile (lines
            // 3–4), then record the own rating (line 5) — the paper's
            // order. What is folded is the *shared* profile: item profiles
            // travel the network, so they disclose whatever gossip does.
            // Copy-on-write: build the merged profile straight from the
            // shared predecessor, never cloning it first. With obfuscation
            // off the disclosed profile *is* the true profile — fold it
            // directly instead of materializing the snapshot.
            if self.obfuscation.is_off() {
                if !self.profile.is_empty() {
                    msg.profile = SharedProfile::new(msg.profile.aggregated_with(&self.profile));
                }
            } else {
                let shared = self.shared_profile();
                if !shared.is_empty() {
                    msg.profile = SharedProfile::new(msg.profile.aggregated_with(&shared));
                }
            }
            SharedProfile::make_mut(&mut self.profile).rate(id, msg.header.created_at, true);
        } else {
            SharedProfile::make_mut(&mut self.profile).rate(id, msg.header.created_at, false);
        }
        self.invalidate_shared();
        // Purge non-recent entries from the item profile before forwarding
        // (lines 8–10). Copy the shared profile only when the purge would
        // actually remove something — the read-only scan is cheap and the
        // common case (all entries inside the window) stays zero-copy.
        let cutoff = now.saturating_sub(self.params.profile_window);
        if msg.profile.entries().iter().any(|e| e.timestamp < cutoff) {
            SharedProfile::make_mut(&mut msg.profile).purge_older_than(cutoff);
        }
        let decision = beep::decide(
            &self.params.beep,
            liked,
            msg.dislikes,
            &msg.profile,
            self.wup.view(),
            self.rps.view(),
            self.params.metric,
            rng,
        );
        let hops = msg.hops.saturating_add(1);
        self.emit_news(
            NewsMessage {
                header: msg.header,
                profile: msg.profile,
                dislikes: decision.dislikes,
                hops,
            },
            decision,
            stats,
        )
    }

    /// Fans the message out to the decided targets. The template is *moved*
    /// into the last copy — only the first `n − 1` copies deep-clone the
    /// item profile, which on the dislike path (single target) means no
    /// clone at all.
    fn emit_news(
        &mut self,
        template: NewsMessage,
        decision: ForwardDecision,
        stats: &mut NodeStats,
    ) -> Vec<OutMessage> {
        let n = decision.targets.len();
        if n == 0 {
            return Vec::new();
        }
        stats.news_sent += n as u64;
        let mut out = Vec::with_capacity(n);
        let mut template = Some(template);
        for (i, t) in decision.targets.into_iter().enumerate() {
            let msg = if i + 1 == n {
                template.take().expect("template consumed only once")
            } else {
                template.as_ref().expect("template live until last").clone()
            };
            out.push(OutMessage::new(t, Payload::News(msg)));
        }
        out
    }
}

/// Looks up or computes one view-merge similarity score (see
/// [`WhatsUpNode`]'s `score_cache`). A hit returns the exact `f64` the
/// metric would recompute: keys are snapshot addresses, each entry pins its
/// snapshot's `Arc` alive, and the cache is cleared whenever the ranking
/// profile mutates.
fn memoized_score(
    cache: &std::cell::RefCell<
        // lint:allow(det-map) same probe-only memo as the score_cache field
        &mut std::collections::HashMap<usize, (SharedProfile, f64), crate::hash::BuildIdHasher>,
    >,
    metric: crate::similarity::Metric,
    own: &Profile,
    cand: &SharedProfile,
) -> f64 {
    let key = SharedProfile::as_ptr(cand) as usize;
    if let Some((_, s)) = cache.borrow().get(&key) {
        return *s;
    }
    let s = metric.score(own, cand);
    cache
        .borrow_mut()
        .insert(key, (SharedProfile::clone(cand), s));
    s
}

impl crate::item::ItemHeader {
    fn into_message(self, profile: SharedProfile, dislikes: u8, hops: u16) -> NewsMessage {
        NewsMessage {
            header: self,
            profile,
            dislikes,
            hops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ProfileEntry;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(11)
    }

    /// Opinions oracle: node n likes item i iff i % 2 == n % 2.
    struct Parity;
    impl Opinions for Parity {
        fn likes(&self, node: NodeId, item: ItemId) -> bool {
            item % 2 == (node as u64) % 2
        }
    }

    fn liked_profile(items: &[ItemId]) -> Profile {
        Profile::from_entries(items.iter().map(|&i| ProfileEntry {
            item: i,
            timestamp: 0,
            score: 1.0,
        }))
    }

    fn news(id: ItemId, dislikes: u8) -> NewsMessage {
        NewsMessage {
            header: crate::item::ItemHeader { id, created_at: 0 },
            profile: SharedProfile::new(Profile::new()),
            dislikes,
            hops: 0,
        }
    }

    #[test]
    fn publish_fans_out_to_wup_view() {
        let mut n = WhatsUpNode::new(0, Params::whatsup(2));
        n.seed_views(
            [],
            [
                (1, Profile::new()),
                (2, Profile::new()),
                (3, Profile::new()),
            ],
        );
        let item = NewsItem::new("t", "d", "l", 0, 0);
        let mut st = NodeStats::default();
        let out = n.publish(&item, 0, &mut st, &mut rng());
        assert_eq!(out.len(), 2);
        assert!(n.has_seen(item.id()));
        assert_eq!(st.published, 1);
        assert_eq!(st.news_sent, 2);
        // The source's own fresh rating is inside the item profile (§II-C).
        for m in &out {
            match &m.payload {
                Payload::News(nm) => {
                    assert!(nm.profile.contains(item.id()));
                    assert_eq!(nm.hops, 0);
                }
                other => panic!("unexpected payload {other:?}"),
            }
        }
    }

    #[test]
    fn liked_reception_updates_profile_and_amplifies() {
        // Node 0 likes even items (Parity).
        let mut n = WhatsUpNode::new(0, Params::whatsup(2));
        n.seed_views(
            [(9, Profile::new())],
            [
                (1, Profile::new()),
                (2, Profile::new()),
                (3, Profile::new()),
            ],
        );
        let mut st = NodeStats::default();
        let out = n.on_message(
            7,
            Payload::News(news(4, 1)),
            0,
            &Parity,
            &mut st,
            &mut rng(),
        );
        assert_eq!(out.len(), 2, "fLIKE copies");
        assert_eq!(n.profile().get(4).unwrap().score, 1.0);
        for m in &out {
            if let Payload::News(nm) = &m.payload {
                assert_eq!(nm.dislikes, 1, "like path keeps the counter");
                assert_eq!(nm.hops, 1);
            }
        }
    }

    #[test]
    fn disliked_reception_orients_once() {
        // Node 0 dislikes odd items; RPS node 8's profile matches the item
        // profile, node 9's does not.
        let mut n = WhatsUpNode::new(0, Params::whatsup(2));
        n.seed_views(
            [(8, liked_profile(&[100])), (9, liked_profile(&[200]))],
            [(1, Profile::new())],
        );
        let mut msg = news(5, 0);
        msg.profile = SharedProfile::new(liked_profile(&[100]));
        let mut st = NodeStats::default();
        let out = n.on_message(7, Payload::News(msg), 0, &Parity, &mut st, &mut rng());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].to, 8, "oriented to most-similar RPS node");
        if let Payload::News(nm) = &out[0].payload {
            assert_eq!(nm.dislikes, 1);
        }
        assert_eq!(n.profile().get(5).unwrap().score, 0.0);
    }

    #[test]
    fn ttl_exhausted_dislike_is_dropped() {
        let mut n = WhatsUpNode::new(0, Params::whatsup(2));
        n.seed_views([(8, liked_profile(&[1]))], [(1, Profile::new())]);
        let mut st = NodeStats::default();
        let out = n.on_message(
            7,
            Payload::News(news(5, 4)),
            0,
            &Parity,
            &mut st,
            &mut rng(),
        );
        assert!(out.is_empty());
        // Profile still records the dislike.
        assert_eq!(n.profile().get(5).unwrap().score, 0.0);
    }

    #[test]
    fn duplicates_are_dropped_silently() {
        let mut n = WhatsUpNode::new(0, Params::whatsup(2));
        n.seed_views([], [(1, Profile::new()), (2, Profile::new())]);
        let mut st = NodeStats::default();
        let first = n.on_message(
            7,
            Payload::News(news(4, 0)),
            0,
            &Parity,
            &mut st,
            &mut rng(),
        );
        assert!(!first.is_empty());
        let second = n.on_message(
            3,
            Payload::News(news(4, 0)),
            0,
            &Parity,
            &mut st,
            &mut rng(),
        );
        assert!(second.is_empty());
        assert_eq!(st.news_duplicates, 1);
        assert_eq!(st.news_received, 1);
    }

    #[test]
    fn item_profile_aggregates_likers_history() {
        // Node 0 (likes even) has item 2 in its profile; when it likes item
        // 4, the outgoing item profile must contain item 2 as well.
        let mut n = WhatsUpNode::new(0, Params::whatsup(1));
        n.seed_views([], [(1, Profile::new())]);
        let mut st = NodeStats::default();
        n.on_message(
            7,
            Payload::News(news(2, 0)),
            0,
            &Parity,
            &mut st,
            &mut rng(),
        );
        let out = n.on_message(
            7,
            Payload::News(news(4, 0)),
            0,
            &Parity,
            &mut st,
            &mut rng(),
        );
        let Payload::News(nm) = &out[0].payload else {
            panic!("expected news")
        };
        assert!(
            nm.profile.contains(2),
            "liker history folded into item profile"
        );
        // But per Algorithm 1 ordering, the item itself is folded only via
        // later likers, not by this one.
        assert!(!nm.profile.contains(4));
    }

    #[test]
    fn on_cycle_gossips_and_purges() {
        let mut n = WhatsUpNode::new(0, Params::whatsup(2));
        n.seed_views([(5, Profile::new())], [(6, Profile::new())]);
        // An old rating that must fall out of the 13-cycle window.
        SharedProfile::make_mut(&mut n.profile).rate(99, 0, true);
        let mut st = NodeStats::default();
        let out = n.on_cycle(50, &mut st, &mut rng());
        assert_eq!(out.len(), 2);
        assert!(matches!(out[0].payload, Payload::RpsRequest(_)));
        assert!(matches!(out[1].payload, Payload::WupRequest(_)));
        assert!(n.profile().is_empty(), "window purge removes stale entries");
    }

    #[test]
    fn rps_request_produces_response_and_merge() {
        let mut a = WhatsUpNode::new(0, Params::whatsup(2));
        let mut b = WhatsUpNode::new(1, Params::whatsup(2));
        a.seed_views([(1, Profile::new())], []);
        b.seed_views([(0, Profile::new())], []);
        let mut r = rng();
        let mut st = NodeStats::default();
        let reqs = a.on_cycle(1, &mut st, &mut r);
        let req = &reqs[0];
        assert_eq!(req.to, 1);
        let Payload::RpsRequest(descs) = &req.payload else {
            panic!()
        };
        let resp = b.on_message(
            0,
            Payload::RpsRequest(descs.clone()),
            1,
            &Parity,
            &mut st,
            &mut r,
        );
        assert_eq!(resp.len(), 1);
        assert!(matches!(resp[0].payload, Payload::RpsResponse(_)));
        let out = a.on_message(1, resp[0].payload.clone(), 1, &Parity, &mut st, &mut r);
        assert!(out.is_empty());
    }

    #[test]
    fn wup_exchange_clusters_by_similarity() {
        // Node 0 likes items {2,4}. Candidate 1 likes the same; candidate 3
        // likes disjoint items. After a WUP exchange offering both, node 0's
        // view (size 2 here) must retain candidate 1.
        let mut n = WhatsUpNode::new(0, Params::whatsup(1));
        {
            let p = SharedProfile::make_mut(&mut n.profile);
            p.rate(2, 10, true);
            p.rate(4, 10, true);
        }
        n.seed_views([], [(9, Profile::new())]);
        let offered = vec![
            Descriptor::fresh(1, SharedProfile::new(liked_profile(&[2, 4]))),
            Descriptor::fresh(3, SharedProfile::new(liked_profile(&[101, 103]))),
        ];
        let mut st = NodeStats::default();
        let out = n.on_message(
            5,
            Payload::WupRequest(offered),
            10,
            &Parity,
            &mut st,
            &mut rng(),
        );
        assert!(matches!(out[0].payload, Payload::WupResponse(_)));
        let ids = n.wup_neighbor_ids();
        assert!(ids.contains(&1), "similar candidate retained: {ids:?}");
    }

    #[test]
    fn cold_start_builds_popular_profile() {
        let mut veteran = WhatsUpNode::new(0, Params::whatsup(2));
        veteran.seed_views(
            [
                (1, liked_profile(&[10, 12])),
                (2, liked_profile(&[10])),
                (3, liked_profile(&[10, 14])),
            ],
            [(1, liked_profile(&[10]))],
        );
        let mut joiner = WhatsUpNode::new(42, Params::whatsup(2));
        joiner.cold_start(veteran.views_snapshot(), &Parity);
        // 3 most popular: 10 (3 likes), 12 and 14 (1 like each).
        assert_eq!(joiner.profile().len(), 3);
        assert!(joiner.profile().contains(10));
        // Node 42 likes even items, so all three are rated like.
        assert_eq!(joiner.profile().get(10).unwrap().score, 1.0);
        assert!(!joiner.rps_neighbor_ids().is_empty());
        assert!(!joiner.wup_neighbor_ids().is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut n = WhatsUpNode::new(0, Params::whatsup(3));
            n.seed_views(
                (1..20).map(|i| (i, liked_profile(&[i as u64]))),
                (1..8).map(|i| (i, liked_profile(&[i as u64]))),
            );
            let mut r = ChaCha8Rng::seed_from_u64(77);
            let mut st = NodeStats::default();
            let mut log = Vec::new();
            for cycle in 0..5 {
                log.extend(n.on_cycle(cycle, &mut st, &mut r));
                log.extend(n.on_message(
                    1,
                    Payload::News(news(cycle as u64 * 2, 0)),
                    cycle,
                    &Parity,
                    &mut st,
                    &mut r,
                ));
            }
            log
        };
        let (a, b) = (run(), run());
        assert_eq!(a, b);
    }

    #[test]
    fn gossip_params_forward_disliked_items_randomly() {
        let mut n = WhatsUpNode::new(0, Params::gossip(3));
        n.seed_views((1..10).map(|i| (i, Profile::new())), []);
        // Node 0 dislikes odd items but homogeneous gossip forwards anyway.
        let mut st = NodeStats::default();
        let out = n.on_message(
            5,
            Payload::News(news(5, 200)),
            0,
            &Parity,
            &mut st,
            &mut rng(),
        );
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn stats_add_up() {
        let mut n = WhatsUpNode::new(0, Params::whatsup(2));
        n.seed_views([(1, Profile::new())], [(2, Profile::new())]);
        let mut r = rng();
        let mut st = NodeStats::default();
        n.on_cycle(0, &mut st, &mut r);
        n.on_message(1, Payload::News(news(2, 0)), 0, &Parity, &mut st, &mut r);
        assert_eq!(st.total_sent(), st.rps_sent + st.wup_sent + st.news_sent);
        assert!(st.total_sent() >= 3);
    }
}
