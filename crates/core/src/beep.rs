//! BEEP target selection (paper §III, Algorithm 2).
//!
//! BEEP is heterogeneous along two dimensions:
//!
//! * **Amplification** — the number of targets depends on the user's opinion:
//!   `fLIKE` copies for a liked item (social filtering: interest amplifies
//!   spread), a single copy for a disliked one.
//! * **Orientation** — *which* targets: liked items go to random WUP
//!   neighbors (already similar, randomness avoids over-clustering);
//!   disliked items go to the RPS node whose profile best matches the
//!   *item's* profile, giving the item a chance to find its community
//!   elsewhere (serendipity), bounded by a TTL carried in the message.
//!
//! The decision logic is pure: callers pass the views in and get the target
//! list out, so the paper's CF and gossip baselines are alternative
//! [`BeepConfig`]s rather than separate protocol stacks.

use crate::profile::{Profile, SharedProfile};
use crate::similarity::Metric;
use rand::Rng;
use serde::{Deserialize, Serialize};
use whatsup_gossip::{NodeId, View};

/// Where like-forwarding picks its targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TargetPool {
    /// The WUP clustering view (WhatsUp, CF).
    Wup,
    /// The RPS view (homogeneous gossip baseline).
    Rps,
}

/// What to do with an item the user dislikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DislikeRule {
    /// Drop it (CF baselines take "no action", §IV-B).
    Drop,
    /// Forward up to `ttl` total dislike-hops. `oriented` selects the RPS
    /// node most similar to the item profile (BEEP) versus a uniform RPS
    /// node (ablation / homogeneous gossip).
    Forward {
        fanout: usize,
        ttl: u8,
        oriented: bool,
    },
}

/// BEEP policy knobs (a [`crate::params::Params`] fragment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BeepConfig {
    /// Fanout for liked items (`fLIKE`).
    pub f_like: usize,
    /// Pool liked-item targets are drawn from.
    pub like_pool: TargetPool,
    /// CF mode: ignore `f_like` sampling and forward to the *entire* view
    /// ("forwards it to its k closest neighbors").
    pub like_entire_view: bool,
    /// Dislike-path rule.
    pub dislike: DislikeRule,
}

/// Outcome of Algorithm 2 for one received copy.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ForwardDecision {
    /// Nodes to send the copy to (empty = drop).
    pub targets: Vec<NodeId>,
    /// The dislike counter to stamp on the outgoing copies.
    pub dislikes: u8,
}

/// Applies Algorithm 2.
///
/// * `liked` — the receiving user's opinion (`iLike`).
/// * `dislikes` — the counter `dI` carried by the received copy.
/// * `item_profile` — the copy's aggregated profile (used by orientation).
/// * `wup_view`, `rps_view` — the node's current views.
#[allow(clippy::too_many_arguments)] // Algorithm 2 takes the full context
pub fn decide(
    config: &BeepConfig,
    liked: bool,
    dislikes: u8,
    item_profile: &Profile,
    wup_view: &View<SharedProfile>,
    rps_view: &View<SharedProfile>,
    metric: Metric,
    rng: &mut impl Rng,
) -> ForwardDecision {
    if liked {
        let pool = match config.like_pool {
            TargetPool::Wup => wup_view,
            TargetPool::Rps => rps_view,
        };
        let targets = if config.like_entire_view {
            pool.node_ids().collect()
        } else {
            pool.sample_ids(config.f_like, rng)
        };
        return ForwardDecision { targets, dislikes };
    }
    match config.dislike {
        DislikeRule::Drop => ForwardDecision {
            targets: Vec::new(),
            dislikes,
        },
        DislikeRule::Forward {
            fanout,
            ttl,
            oriented,
        } => {
            if dislikes >= ttl {
                return ForwardDecision {
                    targets: Vec::new(),
                    dislikes,
                };
            }
            let targets = if oriented {
                // The salt decorrelates tie-breaking: with an immature item
                // profile every candidate scores 0, and a fixed tie order
                // would funnel all disliked traffic to the same nodes.
                select_most_similar_k(item_profile, rps_view, metric, fanout, rng.gen())
            } else {
                rps_view.sample_ids(fanout, rng)
            };
            ForwardDecision {
                targets,
                dislikes: dislikes.saturating_add(1),
            }
        }
    }
}

/// `selectMostSimilarNode(P^I, RPS)` (Algorithm 2, line 27): the RPS entry
/// whose profile is closest to the item profile. Deterministic for a given
/// `salt`; an empty view yields `None`.
pub fn select_most_similar(
    item_profile: &Profile,
    rps_view: &View<SharedProfile>,
    metric: Metric,
) -> Option<NodeId> {
    select_most_similar_k(item_profile, rps_view, metric, 1, 0)
        .into_iter()
        .next()
}

/// The `k` RPS entries closest to the item profile (BEEP uses `k = 1`; the
/// no-amplification ablation widens the dislike path to match `fLIKE`).
/// Ties break on a salt-keyed mix of the node id, so equal-scoring
/// candidates do not collapse onto a global order.
pub fn select_most_similar_k(
    item_profile: &Profile,
    rps_view: &View<SharedProfile>,
    metric: Metric,
    k: usize,
    salt: u64,
) -> Vec<NodeId> {
    if k == 0 || rps_view.is_empty() {
        return Vec::new();
    }
    // BEEP proper always asks for a single target (dislike fanout 1), and
    // that call sits on the news hot path: a running max under the same
    // (score desc, tie-mix) order replaces the sort — and the allocation —
    // entirely. The mix is precomputed per candidate in both paths; the
    // sort comparator would otherwise re-derive it O(n log n) times.
    if k == 1 {
        let best = rps_view
            .entries()
            .iter()
            .map(|d| {
                (
                    metric.score(item_profile, &d.payload),
                    tie_mix(salt, d.node),
                    d.node,
                )
            })
            .max_by(|(sa, ma, _), (sb, mb, _)| {
                sa.partial_cmp(sb)
                    .expect("similarity is never NaN")
                    .then(mb.cmp(ma))
            })
            .map(|(_, _, n)| n);
        return best.into_iter().collect();
    }
    let mut scored: Vec<(f64, u64, NodeId)> = rps_view
        .entries()
        .iter()
        .map(|d| {
            (
                metric.score(item_profile, &d.payload),
                tie_mix(salt, d.node),
                d.node,
            )
        })
        .collect();
    scored.sort_by(|(sa, ma, _), (sb, mb, _)| {
        sb.partial_cmp(sa)
            .expect("similarity is never NaN")
            .then(ma.cmp(mb))
    });
    scored.truncate(k);
    scored.into_iter().map(|(_, _, n)| n).collect()
}

/// SplitMix64-style avalanche for salt-keyed tie-breaking.
#[inline]
fn tie_mix(salt: u64, node: NodeId) -> u64 {
    let mut x = salt ^ (node as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ProfileEntry;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use whatsup_gossip::Descriptor;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(5)
    }

    fn profile(likes: &[u64]) -> Profile {
        Profile::from_entries(likes.iter().map(|&i| ProfileEntry {
            item: i,
            timestamp: 0,
            score: 1.0,
        }))
    }

    fn view(entries: &[(NodeId, &[u64])]) -> View<SharedProfile> {
        let mut v = View::new(entries.len().max(1));
        for &(n, likes) in entries {
            v.insert(Descriptor::fresh(n, std::sync::Arc::new(profile(likes))));
        }
        v
    }

    fn whatsup_cfg() -> BeepConfig {
        BeepConfig {
            f_like: 2,
            like_pool: TargetPool::Wup,
            like_entire_view: false,
            dislike: DislikeRule::Forward {
                fanout: 1,
                ttl: 4,
                oriented: true,
            },
        }
    }

    #[test]
    fn liked_item_amplifies_from_wup() {
        let wup = view(&[(1, &[]), (2, &[]), (3, &[])]);
        let rps = view(&[(9, &[])]);
        let d = decide(
            &whatsup_cfg(),
            true,
            0,
            &Profile::new(),
            &wup,
            &rps,
            Metric::Wup,
            &mut rng(),
        );
        assert_eq!(d.targets.len(), 2);
        assert!(d.targets.iter().all(|t| [1, 2, 3].contains(t)));
        assert_eq!(d.dislikes, 0, "like path never bumps the counter");
    }

    #[test]
    fn disliked_item_is_oriented_and_counted() {
        // Item profile likes {1,2}; node 8's profile matches, node 9's not.
        let wup = view(&[(1, &[])]);
        let rps = view(&[(8, &[1, 2]), (9, &[50])]);
        let item_profile = profile(&[1, 2]);
        let d = decide(
            &whatsup_cfg(),
            false,
            1,
            &item_profile,
            &wup,
            &rps,
            Metric::Wup,
            &mut rng(),
        );
        assert_eq!(d.targets, vec![8]);
        assert_eq!(d.dislikes, 2);
    }

    #[test]
    fn ttl_exhaustion_drops() {
        let rps = view(&[(8, &[1])]);
        let d = decide(
            &whatsup_cfg(),
            false,
            4,
            &profile(&[1]),
            &view(&[]),
            &rps,
            Metric::Wup,
            &mut rng(),
        );
        assert!(d.targets.is_empty());
        assert_eq!(d.dislikes, 4, "counter unchanged on drop");
    }

    #[test]
    fn cf_forwards_entire_view_and_drops_dislikes() {
        let cfg = BeepConfig {
            f_like: 3,
            like_pool: TargetPool::Wup,
            like_entire_view: true,
            dislike: DislikeRule::Drop,
        };
        let wup = view(&[(1, &[]), (2, &[]), (3, &[]), (4, &[])]);
        let rps = view(&[(9, &[])]);
        let liked = decide(
            &cfg,
            true,
            0,
            &Profile::new(),
            &wup,
            &rps,
            Metric::Wup,
            &mut rng(),
        );
        assert_eq!(liked.targets.len(), 4, "CF sends to all k neighbors");
        let disliked = decide(
            &cfg,
            false,
            0,
            &Profile::new(),
            &wup,
            &rps,
            Metric::Wup,
            &mut rng(),
        );
        assert!(disliked.targets.is_empty());
    }

    #[test]
    fn gossip_forwards_dislikes_uniformly() {
        let cfg = BeepConfig {
            f_like: 2,
            like_pool: TargetPool::Rps,
            like_entire_view: false,
            dislike: DislikeRule::Forward {
                fanout: 2,
                ttl: u8::MAX,
                oriented: false,
            },
        };
        let rps = view(&[(1, &[]), (2, &[]), (3, &[])]);
        let d = decide(
            &cfg,
            false,
            7,
            &Profile::new(),
            &view(&[]),
            &rps,
            Metric::Wup,
            &mut rng(),
        );
        assert_eq!(d.targets.len(), 2);
        assert_eq!(d.dislikes, 8);
    }

    #[test]
    fn orientation_tie_break_is_deterministic_per_salt() {
        let rps = view(&[(5, &[1]), (3, &[1])]);
        let a = select_most_similar(&profile(&[1]), &rps, Metric::Wup);
        let b = select_most_similar(&profile(&[1]), &rps, Metric::Wup);
        assert_eq!(a, b, "same salt, same pick");
        assert!(matches!(a, Some(3) | Some(5)));
        // Different salts must be able to pick different tied candidates.
        let picks: std::collections::HashSet<NodeId> = (0..32u64)
            .filter_map(|salt| {
                select_most_similar_k(&profile(&[1]), &rps, Metric::Wup, 1, salt)
                    .into_iter()
                    .next()
            })
            .collect();
        assert_eq!(picks.len(), 2, "ties must not collapse onto one node");
    }

    #[test]
    fn top_k_orientation_orders_by_similarity() {
        // Node 8 matches both liked items, node 5 one (tied at 1.0 under
        // the asymmetric metric), node 3 none — 3 must always rank last.
        let rps = view(&[(5, &[1]), (3, &[50]), (8, &[1, 2])]);
        let ip = profile(&[1, 2]);
        let sel = select_most_similar_k(&ip, &rps, Metric::Wup, 2, 0);
        let mut sorted = sel.clone();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            vec![5, 8],
            "zero-match candidate excluded from top 2"
        );
        let all = select_most_similar_k(&ip, &rps, Metric::Wup, 10, 0);
        assert_eq!(all.len(), 3, "k larger than view returns everything");
        assert_eq!(*all.last().unwrap(), 3, "worst match last");
    }

    #[test]
    fn widened_dislike_fanout_sends_multiple_oriented_copies() {
        let cfg = BeepConfig {
            f_like: 3,
            like_pool: TargetPool::Wup,
            like_entire_view: false,
            dislike: DislikeRule::Forward {
                fanout: 2,
                ttl: 4,
                oriented: true,
            },
        };
        let rps = view(&[(1, &[7]), (2, &[7]), (3, &[50])]);
        let d = decide(
            &cfg,
            false,
            0,
            &profile(&[7]),
            &view(&[]),
            &rps,
            Metric::Wup,
            &mut rng(),
        );
        let mut targets = d.targets.clone();
        targets.sort_unstable();
        assert_eq!(targets, vec![1, 2], "both similar nodes targeted");
        assert_eq!(d.dislikes, 1);
    }

    #[test]
    fn empty_rps_view_yields_no_target() {
        let sel = select_most_similar(&profile(&[1]), &View::new(1), Metric::Wup);
        assert_eq!(sel, None);
    }

    #[test]
    fn fanout_larger_than_view_takes_all() {
        let cfg = BeepConfig {
            f_like: 10,
            ..whatsup_cfg()
        };
        let wup = view(&[(1, &[]), (2, &[])]);
        let d = decide(
            &cfg,
            true,
            0,
            &Profile::new(),
            &wup,
            &View::new(1),
            Metric::Wup,
            &mut rng(),
        );
        assert_eq!(d.targets.len(), 2);
    }
}
