//! News items (paper §II-A).
//!
//! A news item is a title, a short description and a link. Its source stamps
//! it with a creation timestamp and a dislike counter initialized to zero.
//! The item is identified by an 8-byte hash of its content, computed — not
//! transmitted — by every node that receives it.

use crate::hash::Fnv1a;
use serde::{Deserialize, Serialize};

/// 8-byte content identifier of a news item (§II-A).
pub type ItemId = u64;

/// Logical time. In simulation this is the gossip-cycle index; in the
/// network runtimes it is coarse wall-clock ticks of one gossip period.
pub type Timestamp = u32;

/// A full news item as published by its source.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NewsItem {
    pub title: String,
    pub description: String,
    pub link: String,
    /// The publishing node.
    pub source: u32,
    /// Creation time set by the source.
    pub created_at: Timestamp,
}

impl NewsItem {
    pub fn new(
        title: impl Into<String>,
        description: impl Into<String>,
        link: impl Into<String>,
        source: u32,
        created_at: Timestamp,
    ) -> Self {
        Self {
            title: title.into(),
            description: description.into(),
            link: link.into(),
            source,
            created_at,
        }
    }

    /// The 8-byte identifier: an FNV-1a digest over all content fields.
    /// Field-prefixed so that moving bytes between fields changes the id.
    pub fn id(&self) -> ItemId {
        let mut h = Fnv1a::new();
        h.update_field(self.title.as_bytes())
            .update_field(self.description.as_bytes())
            .update_field(self.link.as_bytes())
            .update_field(&self.source.to_le_bytes())
            .update_field(&self.created_at.to_le_bytes());
        h.finish()
    }

    /// The compact header that travels with every copy.
    pub fn header(&self) -> ItemHeader {
        ItemHeader {
            id: self.id(),
            created_at: self.created_at,
        }
    }
}

/// The `<idI, tI>` pair of Algorithms 1–2: what dissemination actually
/// manipulates once the content has been hashed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ItemHeader {
    pub id: ItemId,
    pub created_at: Timestamp,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item() -> NewsItem {
        NewsItem::new("title", "desc", "https://x", 3, 17)
    }

    #[test]
    fn id_is_stable() {
        assert_eq!(item().id(), item().id());
    }

    #[test]
    fn id_depends_on_every_field() {
        let base = item();
        let mut v = item();
        v.title = "other".into();
        assert_ne!(base.id(), v.id());
        let mut v = item();
        v.description = "other".into();
        assert_ne!(base.id(), v.id());
        let mut v = item();
        v.link = "https://y".into();
        assert_ne!(base.id(), v.id());
        let mut v = item();
        v.source = 4;
        assert_ne!(base.id(), v.id());
        let mut v = item();
        v.created_at = 18;
        assert_ne!(base.id(), v.id());
    }

    #[test]
    fn header_carries_id_and_time() {
        let h = item().header();
        assert_eq!(h.id, item().id());
        assert_eq!(h.created_at, 17);
    }

    #[test]
    fn field_shifting_changes_id() {
        let a = NewsItem::new("ab", "c", "l", 0, 0);
        let b = NewsItem::new("a", "bc", "l", 0, 0);
        assert_ne!(a.id(), b.id());
    }
}
