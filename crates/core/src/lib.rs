//! # whatsup-core
//!
//! Sans-io implementation of the WhatsUp decentralized instant news
//! recommender (Boutet, Frey, Guerraoui, Jégou, Kermarrec — IPDPS 2013):
//!
//! * **WUP** (§II): an implicit social network. Every node runs a random
//!   peer sampling layer and a similarity-clustering layer (from
//!   `whatsup-gossip`) whose descriptors carry *user profiles* — vectors of
//!   (item, timestamp, like/dislike) opinions. The clustering layer ranks
//!   candidates with the asymmetric [WUP similarity
//!   metric](similarity::wup_similarity).
//! * **BEEP** (§III): a biased epidemic dissemination protocol. Liked items
//!   are *amplified* — forwarded to `fLIKE` random WUP neighbors; disliked
//!   items are *oriented* — forwarded to the single RPS neighbor whose
//!   profile is closest to the item's aggregated *item profile*, at most
//!   `TTL` times.
//!
//! The central type is [`node::WhatsUpNode`]: a pure state machine that maps
//! input events (cycle ticks, received messages, publications) to output
//! messages. It performs no I/O and draws all randomness from a caller-
//! provided RNG, so the deterministic simulator (`whatsup-sim`) and the real
//! network runtimes (`whatsup-net`) share every line of protocol logic.
//!
//! ```
//! use whatsup_core::prelude::*;
//! use rand::SeedableRng;
//!
//! let params = Params::default();
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let mut alice = WhatsUpNode::new(0, params.clone());
//! let mut bob = WhatsUpNode::new(1, params);
//! // Introduce them to each other (RPS and WUP views).
//! alice.seed_views([(1, Profile::new())], [(1, Profile::new())]);
//! bob.seed_views([(0, Profile::new())], [(0, Profile::new())]);
//!
//! let item = NewsItem::new("hello", "a first item", "https://example.org", 0, 0);
//! let mut stats = NodeStats::default(); // counters live with the caller
//! let out = alice.publish(&item, 0, &mut stats, &mut rng);
//! assert!(!out.is_empty()); // the item leaves Alice immediately
//!
//! // Bob receives it and reacts according to his opinions (here: likes all).
//! let everyone_likes = |_node: NodeId, _item: ItemId| true;
//! let forwards = bob.on_message(0, out[0].payload.clone(), 0, &everyone_likes, &mut stats, &mut rng);
//! assert!(bob.profile().contains(item.id()));
//! # let _ = forwards;
//! ```

pub mod beep;
pub mod bootstrap;
pub mod hash;
pub mod item;
pub mod message;
pub mod node;
pub mod obfuscation;
pub mod params;
pub mod profile;
pub mod seen;
pub mod similarity;

/// Convenient re-exports of the whole public surface.
pub mod prelude {
    pub use crate::beep::{BeepConfig, ForwardDecision};
    pub use crate::bootstrap::{most_popular_items, ColdStart};
    pub use crate::hash::fnv1a64;
    pub use crate::item::{ItemHeader, ItemId, NewsItem, Timestamp};
    pub use crate::message::{NewsMessage, OutMessage, Payload};
    pub use crate::node::{NodeState, NodeStats, Opinions, WhatsUpNode};
    pub use crate::obfuscation::Obfuscation;
    pub use crate::params::Params;
    pub use crate::profile::{Profile, ProfileEntry, Score, SharedProfile};
    pub use crate::seen::SeenSet;
    pub use crate::similarity::{cosine_similarity, wup_similarity, Metric};
    pub use whatsup_gossip::{Descriptor, NodeId, View};
}

pub use prelude::*;
