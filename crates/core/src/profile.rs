//! Interest profiles (paper §II-B/C/E).
//!
//! A profile is a set of `<item id, timestamp, score>` triples with at most
//! one entry per item:
//!
//! * **User profiles** (`P̃`) hold the node's own opinions; scores are binary
//!   (1 = like, 0 = dislike).
//! * **Item profiles** (`P^I`) travel with every copy of a news item and
//!   aggregate the profiles of the users that liked it along the copy's
//!   path; scores are reals in `[0, 1]`, updated by averaging
//!   (`addToNewsProfile`, Algorithm 1).
//!
//! Profiles are stored as vectors sorted by item id. They are small (bounded
//! by the profile window — tens to hundreds of entries), so sorted vectors
//! beat hash maps on both memory and the merge-join scans that dominate
//! similarity computation.

use crate::item::{ItemId, Timestamp};
use serde::{Deserialize, Serialize};

/// Opinion strength for an item: `1.0` = interesting, `0.0` = not.
/// User profiles only ever store the two extremes; item profiles hold
/// averaged intermediate values.
pub type Score = f32;

/// One `<id, t, s>` triple.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProfileEntry {
    pub item: ItemId,
    pub timestamp: Timestamp,
    pub score: Score,
}

/// A profile: sorted-by-item-id vector of entries, unique per item.
///
/// The Euclidean norm of the score vector is memoized at mutation time:
/// similarity scoring reads it on every candidate ranking (the hottest loop
/// in the system), while mutations are comparatively rare. The cache is
/// recomputed with a full deterministic scan on every mutation, so two
/// profiles with equal entries always carry bit-identical cached norms
/// regardless of the operation history that produced them. Equality is
/// defined over `entries` alone (see the manual `PartialEq` below), so a
/// path that bypasses the mutating methods — e.g. a field-wise
/// deserializer leaving the skipped cache at `0.0` — cannot break `==`;
/// [`Self::norm`] additionally debug-asserts the cache against a fresh
/// recompute to catch such a stale cache before it skews similarity.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Profile {
    entries: Vec<ProfileEntry>,
    /// Memoized `‖scores‖₂`; maintained by every mutating method. Never
    /// serialized — it is derived state, and a deserializer must recompute
    /// it from `entries` (as the wire codec does via `from_entries`) rather
    /// than trust external data for an internal invariant.
    #[serde(skip)]
    norm: f64,
    /// Memoized 128-bit Bloom fingerprint of the *rated* item-id set (one
    /// hashed bit per entry). Similarity scoring uses it to reject
    /// no-overlap pairs in two instructions: if two fingerprints share no
    /// bit, the profiles share no rated item, and every metric is exactly
    /// `0.0` (see `crate::similarity`). False positives merely fall through
    /// to the exact merge-join; false negatives are impossible. Maintained
    /// by the same mutation-time recompute as the norm, and like the norm
    /// it is derived state: never serialized, always rebuilt from
    /// `entries`.
    #[serde(skip)]
    fingerprint: u128,
}

/// Entries fully determine a profile; the memoized norm is derived state
/// and deliberately excluded so equality cannot be broken by a stale cache.
impl PartialEq for Profile {
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries
    }
}

/// Euclidean norm of the entries' score vector — the single definition both
/// the mutation-time recompute and the [`Profile::norm`] debug assertion
/// use, so the cache check is exact. An empty (or all-zero) scan is
/// canonicalized to `+0.0`: `Sum for f64` folds from `-0.0`, which would
/// otherwise make recomputed empties bitwise-distinct from the
/// `Default`-constructed cache.
fn norm_of(entries: &[ProfileEntry]) -> f64 {
    let n = entries
        .iter()
        .map(|e| (e.score as f64) * (e.score as f64))
        .sum::<f64>()
        .sqrt();
    if n == 0.0 {
        0.0
    } else {
        n
    }
}

/// One Bloom bit per item id. The SplitMix64 finalizer spreads consecutive
/// ids (datasets hand them out densely from 0) across the 128-bit word; the
/// exact mix constant set does not matter for correctness — only that the
/// mapping id → bit is a pure function, so equal entry sets always produce
/// equal fingerprints.
#[inline]
fn fingerprint_bit(item: ItemId) -> u128 {
    let mut z = item.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    1u128 << (z & 127)
}

/// Fingerprint of an entry slice — the single definition shared by the
/// mutation-time recompute and the [`Profile::fingerprint`] debug assertion.
fn fingerprint_of(entries: &[ProfileEntry]) -> u128 {
    entries
        .iter()
        .fold(0u128, |fp, e| fp | fingerprint_bit(e.item))
}

/// Hand-written deserialization (`[item, timestamp, score]` triple). The
/// shim's derive emits nothing, so these are the impls that actually run.
impl serde::Deserialize for ProfileEntry {
    fn from_json_value(v: &serde::json::Value) -> Result<Self, serde::json::Error> {
        let (item, timestamp, score) = <(ItemId, Timestamp, Score)>::from_json_value(v)?;
        Ok(Self {
            item,
            timestamp,
            score,
        })
    }
}

/// Hand-written deserialization: rebuilds through [`Profile::from_entries`]
/// so the memoized norm is always *recomputed*, never trusted from external
/// data. When the serde shims are swapped for the real crates (see
/// ROADMAP.md), this impl stops compiling — port it to
/// `#[serde(from = "Vec<ProfileEntry>")]` (or a `deserialize_with`) so the
/// recompute guarantee survives the swap; a derived field-wise deserializer
/// would leave the skipped norm cache at `0.0`.
impl serde::Deserialize for Profile {
    fn from_json_value(v: &serde::json::Value) -> Result<Self, serde::json::Error> {
        Ok(Self::from_entries(Vec::<ProfileEntry>::from_json_value(v)?))
    }
}

/// A profile shared immutably across views, messages and threads.
/// Gossip descriptors carry these so exchanges and merges never deep-clone
/// entry vectors.
pub type SharedProfile = std::sync::Arc<Profile>;

impl Profile {
    /// An empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from arbitrary-order entries; keeps the last entry per item.
    pub fn from_entries(entries: impl IntoIterator<Item = ProfileEntry>) -> Self {
        let mut p = Self::new();
        for e in entries {
            p.upsert_unnormed(e);
        }
        p.recompute_norm();
        p
    }

    /// Builds from an owned entry vector, reusing the allocation when the
    /// vector is already sorted by strictly ascending item id — the form
    /// every serialized profile arrives in, since profiles are encoded from
    /// sorted storage. Decoding hot paths call this to skip the per-entry
    /// binary-search rebuild of [`Self::from_entries`]; unsorted input
    /// (possible only from an untrusted wire peer) falls back to the full
    /// rebuild, so the sortedness invariant cannot be violated from
    /// outside.
    pub fn from_vec(entries: Vec<ProfileEntry>) -> Self {
        if entries.windows(2).any(|w| w[0].item >= w[1].item) {
            return Self::from_entries(entries);
        }
        let mut p = Self {
            entries,
            norm: 0.0,
            fingerprint: 0,
        };
        p.recompute_norm();
        p
    }

    /// Recomputes the memoized derived state (norm + fingerprint) in one
    /// fused scan. The norm accumulator runs the exact op sequence of
    /// [`norm_of`] (ascending entry order, `sum += s·s`, then `sqrt`), so
    /// the cache stays bit-identical to the reference recompute; the
    /// fingerprint is an OR-fold and is order-independent by construction.
    fn recompute_norm(&mut self) {
        let mut sum = 0.0f64;
        let mut fp = 0u128;
        for e in &self.entries {
            let s = e.score as f64;
            sum += s * s;
            fp |= fingerprint_bit(e.item);
        }
        let n = sum.sqrt();
        self.norm = if n == 0.0 { 0.0 } else { n };
        self.fingerprint = fp;
    }

    /// Insert/replace without touching the derived-state caches; callers
    /// must [`Self::recompute_norm`] before the profile is observable again.
    fn upsert_unnormed(&mut self, e: ProfileEntry) {
        match self.entries.binary_search_by_key(&e.item, |x| x.item) {
            Ok(i) => self.entries[i] = e,
            Err(i) => self.entries.insert(i, e),
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries in ascending item-id order.
    pub fn entries(&self) -> &[ProfileEntry] {
        &self.entries
    }

    /// Allocated (not occupied) entry slots — memory diagnostics only.
    #[doc(hidden)]
    pub fn entries_capacity(&self) -> usize {
        self.entries.capacity()
    }

    /// Releases entry-slot slack left by amortized growth. Capacity never
    /// influences behavior — memory hygiene only (see
    /// `WhatsUpNode::compact`).
    pub fn trim_capacity(&mut self) {
        self.entries.shrink_to_fit();
    }

    /// Looks up an entry by item id.
    pub fn get(&self, item: ItemId) -> Option<&ProfileEntry> {
        self.entries
            .binary_search_by_key(&item, |e| e.item)
            .ok()
            .map(|i| &self.entries[i])
    }

    /// Whether the profile contains an opinion on `item`.
    pub fn contains(&self, item: ItemId) -> bool {
        self.get(item).is_some()
    }

    /// Inserts or replaces the entry for `e.item` (§II-B: "each profile
    /// contains only a single entry for a given identifier").
    ///
    /// The norm is recomputed with the full reference scan (f64 summation
    /// is order-sensitive, so only the canonical scan is bit-exact); the
    /// fingerprint is updated incrementally — an OR-fold over the item set
    /// is order-independent, a replace keeps the item set unchanged, and an
    /// insert adds exactly one bit.
    pub fn upsert(&mut self, e: ProfileEntry) {
        let bit = fingerprint_bit(e.item);
        match self.entries.binary_search_by_key(&e.item, |x| x.item) {
            Ok(i) => self.entries[i] = e,
            Err(i) => {
                self.entries.insert(i, e);
                self.fingerprint |= bit;
            }
        }
        self.norm = norm_of(&self.entries);
    }

    /// Records the user's opinion on an item (Algorithm 1, lines 5/7/14).
    pub fn rate(&mut self, item: ItemId, timestamp: Timestamp, liked: bool) {
        self.upsert(ProfileEntry {
            item,
            timestamp,
            score: if liked { 1.0 } else { 0.0 },
        });
    }

    /// `addToNewsProfile` (Algorithm 1, lines 18–22): folds one user-profile
    /// entry into this *item* profile — averaging with the existing score if
    /// present, inserting otherwise. Averaging keeps the freshest timestamp
    /// so the window purge reflects the most recent supporting opinion.
    pub fn add_to_news_profile(&mut self, e: ProfileEntry) {
        self.add_to_news_profile_unnormed(e);
        self.recompute_norm();
    }

    fn add_to_news_profile_unnormed(&mut self, e: ProfileEntry) {
        match self.entries.binary_search_by_key(&e.item, |x| x.item) {
            Ok(i) => {
                let cur = &mut self.entries[i];
                cur.score = (cur.score + e.score) / 2.0;
                cur.timestamp = cur.timestamp.max(e.timestamp);
            }
            Err(i) => self.entries.insert(i, e),
        }
    }

    /// Folds an entire user profile into this item profile (Algorithm 1,
    /// lines 3–4 and 15–16).
    ///
    /// Runs as one linear merge of the two sorted entry vectors rather than
    /// per-entry binary-search inserts: the fold is the hottest profile
    /// mutation (every liked reception executes it), and repeated
    /// mid-vector inserts are O(n·m) in memmoves. The merge applies the
    /// exact per-item rule of [`Self::add_to_news_profile`] (average the
    /// score, keep the freshest timestamp), so the resulting entries — and
    /// the recomputed derived state — are identical to the sequential fold.
    pub fn aggregate_user_profile(&mut self, user: &Profile) {
        if user.is_empty() {
            return;
        }
        *self = self.aggregated_with(user);
    }

    /// [`Self::aggregate_user_profile`] as a pure function: returns the
    /// merged profile, leaving `self` untouched. The copy-on-write news path
    /// builds the next hop's item profile directly from a shared (`Arc`ed)
    /// predecessor with this, instead of deep-cloning the predecessor only
    /// to overwrite the clone's entries.
    pub fn aggregated_with(&self, user: &Profile) -> Profile {
        let a = &self.entries;
        let b = user.entries();
        let mut merged = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].item.cmp(&b[j].item) {
                std::cmp::Ordering::Less => {
                    merged.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    merged.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    let (cur, e) = (a[i], b[j]);
                    merged.push(ProfileEntry {
                        item: cur.item,
                        timestamp: cur.timestamp.max(e.timestamp),
                        score: (cur.score + e.score) / 2.0,
                    });
                    i += 1;
                    j += 1;
                }
            }
        }
        merged.extend_from_slice(&a[i..]);
        merged.extend_from_slice(&b[j..]);
        let mut out = Profile {
            entries: merged,
            norm: 0.0,
            fingerprint: 0,
        };
        out.recompute_norm();
        out
    }

    /// Removes entries strictly older than `cutoff` (profile window, §II-E).
    /// `cutoff = now - window`; an entry stamped exactly at the cutoff
    /// survives.
    pub fn purge_older_than(&mut self, cutoff: Timestamp) {
        // Unsigned timestamps are never below zero, so a zero cutoff (every
        // run whose clock has not yet passed the window length) retains
        // everything — skip the scan.
        if cutoff == 0 {
            return;
        }
        let before = self.entries.len();
        self.entries.retain(|e| e.timestamp >= cutoff);
        if self.entries.len() != before {
            self.recompute_norm();
        }
    }

    /// Item ids the profile *likes* (score > 0.5 — exact 1.0 for user
    /// profiles; majority opinion for item profiles).
    pub fn liked_items(&self) -> impl Iterator<Item = ItemId> + '_ {
        self.entries
            .iter()
            .filter(|e| e.score > 0.5)
            .map(|e| e.item)
    }

    /// Number of liked items.
    pub fn like_count(&self) -> usize {
        self.entries.iter().filter(|e| e.score > 0.5).count()
    }

    /// Euclidean norm of the score vector (memoized; O(1)).
    pub fn norm(&self) -> f64 {
        debug_assert!(
            self.norm.to_bits() == norm_of(&self.entries).to_bits(),
            "stale norm cache: a construction path skipped recompute_norm"
        );
        self.norm
    }

    /// Bloom fingerprint of the rated item-id set (memoized; O(1)).
    ///
    /// `a.fingerprint() & b.fingerprint() == 0` proves `a` and `b` share no
    /// rated item — the zero-rejection fast path in `crate::similarity`.
    pub fn fingerprint(&self) -> u128 {
        debug_assert!(
            self.fingerprint == fingerprint_of(&self.entries),
            "stale fingerprint cache: a construction path skipped recompute_norm"
        );
        self.fingerprint
    }

    /// The most recent timestamp in the profile, if any.
    pub fn newest_timestamp(&self) -> Option<Timestamp> {
        self.entries.iter().map(|e| e.timestamp).max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn e(item: ItemId, t: Timestamp, s: Score) -> ProfileEntry {
        ProfileEntry {
            item,
            timestamp: t,
            score: s,
        }
    }

    #[test]
    fn rate_inserts_sorted_unique() {
        let mut p = Profile::new();
        p.rate(30, 0, true);
        p.rate(10, 1, false);
        p.rate(20, 2, true);
        p.rate(10, 3, true); // re-rating replaces
        let ids: Vec<ItemId> = p.entries().iter().map(|x| x.item).collect();
        assert_eq!(ids, vec![10, 20, 30]);
        assert_eq!(p.get(10).unwrap().score, 1.0);
        assert_eq!(p.get(10).unwrap().timestamp, 3);
    }

    #[test]
    fn add_to_news_profile_averages() {
        let mut item_profile = Profile::new();
        item_profile.add_to_news_profile(e(1, 0, 1.0));
        item_profile.add_to_news_profile(e(1, 5, 0.0));
        let entry = item_profile.get(1).unwrap();
        assert_eq!(entry.score, 0.5);
        assert_eq!(entry.timestamp, 5, "freshest timestamp kept");
        item_profile.add_to_news_profile(e(1, 2, 1.0));
        assert_eq!(item_profile.get(1).unwrap().score, 0.75);
    }

    #[test]
    fn aggregate_folds_every_entry() {
        let user = Profile::from_entries([e(1, 0, 1.0), e(2, 0, 0.0)]);
        let mut item_profile = Profile::new();
        item_profile.aggregate_user_profile(&user);
        assert_eq!(item_profile.len(), 2);
        assert_eq!(item_profile.get(2).unwrap().score, 0.0);
    }

    #[test]
    fn purge_respects_cutoff_inclusively() {
        let mut p = Profile::from_entries([e(1, 5, 1.0), e(2, 6, 1.0), e(3, 4, 1.0)]);
        p.purge_older_than(5);
        assert!(p.contains(1));
        assert!(p.contains(2));
        assert!(!p.contains(3));
    }

    #[test]
    fn likes_and_norm() {
        let p = Profile::from_entries([e(1, 0, 1.0), e(2, 0, 0.0), e(3, 0, 1.0)]);
        let likes: Vec<ItemId> = p.liked_items().collect();
        assert_eq!(likes, vec![1, 3]);
        assert_eq!(p.like_count(), 2);
        assert!((p.norm() - (2.0f64).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn empty_profile_properties() {
        let p = Profile::new();
        assert!(p.is_empty());
        assert_eq!(p.norm(), 0.0);
        assert_eq!(p.newest_timestamp(), None);
    }

    #[test]
    fn from_entries_keeps_last_per_item() {
        let p = Profile::from_entries([e(1, 0, 1.0), e(1, 9, 0.0)]);
        assert_eq!(p.len(), 1);
        assert_eq!(p.get(1).unwrap().score, 0.0);
    }

    #[test]
    fn deserialize_recomputes_norm() {
        use serde::Deserialize;
        let v = serde::json::parse("[[2, 6, 0.0], [1, 5, 1.0]]").unwrap();
        let p = Profile::from_json_value(&v).unwrap();
        assert_eq!(p.len(), 2);
        // `norm()` debug-asserts the cache against a fresh recompute, so a
        // deserializer that skipped `from_entries` would panic here.
        assert_eq!(p.norm(), 1.0);
        assert_eq!(p, Profile::from_entries([e(1, 5, 1.0), e(2, 6, 0.0)]));
    }

    proptest! {
        #[test]
        fn entries_always_sorted_unique(
            ops in prop::collection::vec((0u64..50, 0u32..100, prop::bool::ANY), 0..200)
        ) {
            let mut p = Profile::new();
            for (item, t, liked) in ops {
                p.rate(item, t, liked);
            }
            let ids: Vec<ItemId> = p.entries().iter().map(|x| x.item).collect();
            let mut sorted = ids.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(ids, sorted);
        }

        #[test]
        fn item_profile_scores_stay_in_unit_interval(
            ops in prop::collection::vec((0u64..10, prop::bool::ANY), 1..100)
        ) {
            let mut ip = Profile::new();
            for (item, liked) in ops {
                ip.add_to_news_profile(e(item, 0, if liked { 1.0 } else { 0.0 }));
            }
            for entry in ip.entries() {
                prop_assert!((0.0..=1.0).contains(&entry.score));
            }
        }

        #[test]
        fn cached_norm_matches_recomputation(
            ops in prop::collection::vec((0u64..30, 0u32..50, prop::bool::ANY), 0..120),
            cutoff in 0u32..50
        ) {
            let mut p = Profile::new();
            for &(item, t, liked) in &ops {
                p.rate(item, t, liked);
            }
            let mut ip = Profile::new();
            for &(item, t, liked) in &ops {
                ip.add_to_news_profile(e(item, t, if liked { 1.0 } else { 0.5 }));
            }
            ip.aggregate_user_profile(&p);
            ip.purge_older_than(cutoff);
            for profile in [&p, &ip] {
                let expected = profile
                    .entries()
                    .iter()
                    .map(|x| (x.score as f64) * (x.score as f64))
                    .sum::<f64>()
                    .sqrt();
                prop_assert_eq!(profile.norm(), expected, "cache must be exact");
            }
        }

        #[test]
        fn purge_is_monotone(
            ts in prop::collection::vec(0u32..100, 0..50),
            cutoff in 0u32..100
        ) {
            let mut p = Profile::from_entries(
                ts.iter().enumerate().map(|(i, &t)| e(i as u64, t, 1.0))
            );
            let before = p.len();
            p.purge_older_than(cutoff);
            prop_assert!(p.len() <= before);
            prop_assert!(p.entries().iter().all(|x| x.timestamp >= cutoff));
        }
    }
}
