//! System parameters (paper Table II) and per-protocol presets.

use crate::beep::{BeepConfig, DislikeRule, TargetPool};
use crate::similarity::Metric;
use serde::{Deserialize, Serialize};
use whatsup_gossip::RpsConfig;

/// All per-node tunables. `Params::default()` reproduces Table II with the
/// survey-optimal `fLIKE = 10`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Params {
    /// Random peer sampling layer configuration (`RPSvs = 30`).
    pub rps: RpsConfig,
    /// RPS gossip period in cycles (Table II sets `RPSf = 1h` while news
    /// cycles are minutes: the random overlay refreshes much more slowly
    /// than the clustering layer). 1 = every cycle (the simulator default).
    pub rps_period: u32,
    /// WUP clustering view size (`WUPvs`); the paper fixes it to `2·fLIKE`.
    pub wup_view_size: usize,
    /// Similarity metric used for clustering and BEEP orientation.
    pub metric: Metric,
    /// Profile window in cycles: entries older than this are purged (§II-E;
    /// 13 cycles ≈ 1/5 of the experiment duration).
    pub profile_window: u32,
    /// BEEP forwarding policy.
    pub beep: BeepConfig,
    /// Number of popular items a joining node rates at cold start (§II-D).
    pub cold_start_items: usize,
    /// Randomized-response noise on everything the node *shares* (profiles
    /// in gossip descriptors and item-profile contributions); 0 = off.
    /// The privacy extension of §VII — see [`crate::obfuscation`].
    pub obfuscation_epsilon: f64,
}

impl Default for Params {
    fn default() -> Self {
        Self::whatsup(10)
    }
}

impl Params {
    /// WhatsUp with the WUP metric: the paper's full system.
    pub fn whatsup(f_like: usize) -> Self {
        Self {
            rps: RpsConfig::default(),
            rps_period: 1,
            wup_view_size: 2 * f_like,
            metric: Metric::Wup,
            profile_window: 13,
            beep: BeepConfig {
                f_like,
                like_pool: TargetPool::Wup,
                like_entire_view: false,
                dislike: DislikeRule::Forward {
                    fanout: 1,
                    ttl: 4,
                    oriented: true,
                },
            },
            cold_start_items: 3,
            obfuscation_epsilon: 0.0,
        }
    }

    /// WhatsUp-Cos: identical machinery, cosine similarity (§V-A).
    pub fn whatsup_cos(f_like: usize) -> Self {
        Self {
            metric: Metric::Cosine,
            ..Self::whatsup(f_like)
        }
    }

    /// Decentralized CF (§IV-B): on a like, forward to *all* `k` nearest
    /// neighbors; no action on a dislike; no amplification/orientation.
    pub fn cf(k: usize, metric: Metric) -> Self {
        Self {
            rps: RpsConfig::default(),
            rps_period: 1,
            wup_view_size: k,
            metric,
            profile_window: 13,
            beep: BeepConfig {
                f_like: k,
                like_pool: TargetPool::Wup,
                like_entire_view: true,
                dislike: DislikeRule::Drop,
            },
            cold_start_items: 3,
            obfuscation_epsilon: 0.0,
        }
    }

    /// Homogeneous gossip (§IV-B, Table III): forward every first reception
    /// to `fanout` uniform RPS targets, liked or not.
    pub fn gossip(fanout: usize) -> Self {
        Self {
            rps: RpsConfig::default(),
            rps_period: 1,
            wup_view_size: 2 * fanout.max(1),
            metric: Metric::Wup,
            profile_window: 13,
            beep: BeepConfig {
                f_like: fanout,
                like_pool: TargetPool::Rps,
                like_entire_view: false,
                dislike: DislikeRule::Forward {
                    fanout,
                    ttl: u8::MAX,
                    oriented: false,
                },
            },
            cold_start_items: 3,
            obfuscation_epsilon: 0.0,
        }
    }

    /// The dislike-path TTL, when the dislike rule forwards.
    pub fn ttl(&self) -> Option<u8> {
        match self.beep.dislike {
            DislikeRule::Forward { ttl, .. } => Some(ttl),
            DislikeRule::Drop => None,
        }
    }

    /// Validates the invariants the paper states (§IV-D): `WUPvs ≥ fLIKE`,
    /// non-zero window and fanout.
    pub fn validate(&self) -> Result<(), String> {
        if self.beep.f_like == 0 {
            return Err("fLIKE must be ≥ 1".into());
        }
        if self.wup_view_size < self.beep.f_like {
            return Err(format!(
                "WUP view size ({}) must be ≥ fLIKE ({})",
                self.wup_view_size, self.beep.f_like
            ));
        }
        if self.profile_window == 0 {
            return Err("profile window must be ≥ 1 cycle".into());
        }
        if self.rps.view_size == 0 {
            return Err("RPS view must be non-empty".into());
        }
        if self.rps_period == 0 {
            return Err("RPS period must be ≥ 1 cycle".into());
        }
        if !(0.0..=1.0).contains(&self.obfuscation_epsilon) {
            return Err("obfuscation epsilon must be a probability".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table_ii() {
        let p = Params::default();
        assert_eq!(p.rps.view_size, 30);
        assert_eq!(p.wup_view_size, 2 * p.beep.f_like);
        assert_eq!(p.profile_window, 13);
        assert_eq!(p.ttl(), Some(4));
        assert_eq!(p.metric, Metric::Wup);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn cf_forwards_whole_view_and_drops_dislikes() {
        let p = Params::cf(19, Metric::Wup);
        assert!(p.beep.like_entire_view);
        assert_eq!(p.wup_view_size, 19);
        assert_eq!(p.ttl(), None);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn gossip_is_homogeneous() {
        let p = Params::gossip(4);
        assert_eq!(p.beep.f_like, 4);
        match p.beep.dislike {
            DislikeRule::Forward {
                fanout, oriented, ..
            } => {
                assert_eq!(fanout, 4);
                assert!(!oriented);
            }
            DislikeRule::Drop => panic!("gossip must forward dislikes too"),
        }
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut p = Params::whatsup(10);
        p.wup_view_size = 5;
        assert!(p.validate().is_err());
        let mut p = Params::whatsup(10);
        p.beep.f_like = 0;
        assert!(p.validate().is_err());
        let mut p = Params::whatsup(10);
        p.profile_window = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn rps_period_validated() {
        let mut p = Params::whatsup(10);
        assert_eq!(p.rps_period, 1, "simulator default: every cycle");
        p.rps_period = 0;
        assert!(p.validate().is_err());
        p.rps_period = 120;
        assert!(p.validate().is_ok(), "deployment-style slow RPS is valid");
    }

    #[test]
    fn obfuscation_epsilon_validated() {
        let mut p = Params::whatsup(10);
        assert_eq!(
            p.obfuscation_epsilon, 0.0,
            "privacy extension off by default"
        );
        p.obfuscation_epsilon = 0.5;
        assert!(p.validate().is_ok());
        p.obfuscation_epsilon = 1.5;
        assert!(p.validate().is_err());
    }

    #[test]
    fn whatsup_cos_only_changes_metric() {
        let a = Params::whatsup(8);
        let b = Params::whatsup_cos(8);
        assert_eq!(b.metric, Metric::Cosine);
        assert_eq!(a.beep, b.beep);
    }
}
