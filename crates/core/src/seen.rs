//! Compact exact set of already-received item ids (the SIR "removed"
//! state).
//!
//! A node sees every item exactly once per lifetime, so the set only ever
//! grows — and at scale it dominates per-node memory if kept as a hash
//! set (~48 B/entry with `std`'s table overhead). [`SeenSet`] stores the
//! same ids as a sorted run plus a small unsorted recent window: 8 B per
//! id amortized, probes are a binary search over the run plus a linear
//! scan of at most [`RECENT_CAP`] recent ids, and the recent window is
//! merged into the run when it fills.
//!
//! The set is **exact** — never probabilistic. `insert`/`contains` answer
//! identically to a `HashSet<ItemId>`, which is what keeps the engine's
//! dedup behavior (and therefore its reports) bit-identical to the
//! hash-set implementation it replaced.

use crate::item::ItemId;
use serde::{Deserialize, Serialize};

/// Recent-window capacity before a merge into the sorted run. Small
/// enough that the linear probe stays cache-resident; large enough that
/// the O(n) merge amortizes to O(log n) per insert for realistic n.
const RECENT_CAP: usize = 32;

/// Sorted-run + recent-window set of item ids. See the module docs.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeenSet {
    /// Ascending, deduplicated.
    sorted: Vec<ItemId>,
    /// Insertion order, deduplicated against `sorted` and itself; merged
    /// into `sorted` when it reaches [`RECENT_CAP`].
    recent: Vec<ItemId>,
}

impl SeenSet {
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds from an ascending, deduplicated id list (the
    /// [`crate::node::NodeState`] checkpoint form).
    ///
    /// # Panics
    /// Debug-asserts the input is strictly ascending.
    pub fn from_sorted(sorted: Vec<ItemId>) -> Self {
        debug_assert!(sorted.windows(2).all(|w| w[0] < w[1]));
        Self {
            sorted,
            recent: Vec::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.sorted.len() + self.recent.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty() && self.recent.is_empty()
    }

    pub fn contains(&self, item: ItemId) -> bool {
        self.sorted.binary_search(&item).is_ok() || self.recent.contains(&item)
    }

    /// Inserts `item`, returning whether it was new (the `HashSet::insert`
    /// contract).
    pub fn insert(&mut self, item: ItemId) -> bool {
        if self.contains(item) {
            return false;
        }
        if self.recent.len() == RECENT_CAP {
            self.merge();
        }
        self.recent.push(item);
        true
    }

    /// Folds the recent window into the sorted run.
    fn merge(&mut self) {
        self.sorted.append(&mut self.recent);
        self.sorted.sort_unstable();
    }

    /// Allocated heap bytes (capacity, not length) — memory diagnostics.
    #[doc(hidden)]
    pub fn capacity_bytes(&self) -> usize {
        (self.sorted.capacity() + self.recent.capacity()) * std::mem::size_of::<ItemId>()
    }

    /// Releases the sorted run's capacity slack left by merges. The recent
    /// window is already bounded by [`RECENT_CAP`] and is left alone.
    /// Answers are unaffected — memory hygiene only.
    pub fn trim_capacity(&mut self) {
        self.sorted.shrink_to_fit();
    }

    /// All ids, ascending (the canonical export form).
    pub fn to_sorted_vec(&self) -> Vec<ItemId> {
        let mut all = self.sorted.clone();
        all.extend_from_slice(&self.recent);
        all.sort_unstable();
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_len() {
        let mut s = SeenSet::new();
        assert!(s.is_empty());
        assert!(s.insert(7));
        assert!(!s.insert(7), "duplicate rejected");
        assert!(s.insert(3));
        assert!(s.contains(7));
        assert!(s.contains(3));
        assert!(!s.contains(4));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn merge_preserves_exactness() {
        let mut s = SeenSet::new();
        // Enough inserts to force several merges, interleaved with
        // duplicate probes across the run/window boundary.
        for i in 0..10 * RECENT_CAP as u64 {
            let id = i.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 3;
            assert!(s.insert(id));
            assert!(!s.insert(id));
            assert!(s.contains(id));
        }
        assert_eq!(s.len(), 10 * RECENT_CAP);
        let v = s.to_sorted_vec();
        assert!(v.windows(2).all(|w| w[0] < w[1]), "ascending, deduped");
        assert_eq!(v.len(), s.len());
    }

    #[test]
    fn roundtrips_through_sorted_vec() {
        let mut s = SeenSet::new();
        for id in [9, 1, 5, 3, 7] {
            s.insert(id);
        }
        let v = s.to_sorted_vec();
        assert_eq!(v, vec![1, 3, 5, 7, 9]);
        let r = SeenSet::from_sorted(v);
        assert_eq!(r.len(), 5);
        for id in [9, 1, 5, 3, 7] {
            assert!(r.contains(id));
        }
    }
}
