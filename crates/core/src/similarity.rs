//! Profile similarity metrics (paper §II and §VI).
//!
//! The WUP metric is the paper's first contribution: an *asymmetric* variant
//! of cosine similarity. With `sub(Pn, Pc)` the restriction of `Pn` to the
//! items on which `Pc` expressed an opinion:
//!
//! ```text
//! Similarity(n, c) = sub(Pn,Pc) · Pc / (‖sub(Pn,Pc)‖ · ‖Pc‖)
//! ```
//!
//! For binary profiles the numerator counts items liked by both, the first
//! denominator term counts items liked by `n` *that `c` rated at all* — so a
//! candidate that dislikes what `n` likes is penalized (spam control) — and
//! the second term counts items liked by `c`, favoring candidates with
//! restrictive tastes and boosting small profiles (cold start, §II-D).
//!
//! Cosine similarity, the baseline the paper compares against throughout
//! (CF-Cos, WhatsUp-Cos), plus Jaccard — mentioned in §VI among the classic
//! choices — are implemented on the same merge-join skeleton.
//!
//! All functions are allocation-free scans over the two sorted entry
//! vectors. Jaccard needs the full union and always runs the linear
//! merge-join (`O(|Pn| + |Pc|)`); WUP and cosine only need sums over the
//! *common* items (their union terms are the memoized norms), so they use a
//! size-adaptive join — linear merge for comparable sizes, iterate-small /
//! binary-search-big (`O(min·log max)`) when the sizes are skewed, which
//! they chronically are on the news hot path (aggregated item profiles vs
//! slim view snapshots). Both strategies visit common items in ascending id
//! order, so the f64 accumulation — and every output bit — is identical.
//!
//! ## Fingerprint fast path
//!
//! Before the scan, every metric consults the profiles' memoized 128-bit
//! Bloom fingerprints ([`Profile::fingerprint`]): if the two fingerprints
//! share no bit, the profiles share no *rated* item, and each metric is
//! exactly `0.0` without touching an entry —
//!
//! * **wup**: no common item ⇒ `‖sub(Pn,Pc)‖² = 0` ⇒ zero denominator ⇒ 0;
//! * **cosine**: no common item ⇒ `dot = 0` ⇒ `0/denom = +0.0` (or the
//!   zero-denominator guard) — bit-identical to the scan's result;
//! * **jaccard**: no common item ⇒ `common_likes = 0` ⇒ `0/union = +0.0`
//!   (or the empty-union guard).
//!
//! False positives (fingerprints collide but item sets are disjoint) fall
//! through to the exact merge-join; false negatives are impossible, so the
//! fast path never changes a single result bit. The scalar merge-join
//! below stays the exact reference — a property test asserts bit-identical
//! f64 output across random profile pairs.

use crate::profile::Profile;
use serde::{Deserialize, Serialize};

/// Metric selector: which similarity a node family uses for clustering,
/// BEEP orientation and CF neighbor ranking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Metric {
    /// The asymmetric WUP metric (WhatsUp, CF-WUP).
    #[default]
    Wup,
    /// Classic cosine similarity (WhatsUp-Cos, CF-Cos).
    Cosine,
    /// Jaccard index over liked sets (extra baseline, §VI).
    Jaccard,
}

impl Metric {
    /// Scores candidate `pc` against own profile `pn`. Higher = closer.
    #[inline]
    pub fn score(&self, pn: &Profile, pc: &Profile) -> f64 {
        match self {
            Metric::Wup => wup_similarity(pn, pc),
            Metric::Cosine => cosine_similarity(pn, pc),
            Metric::Jaccard => jaccard_similarity(pn, pc),
        }
    }

    /// Human-readable label used in experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            Metric::Wup => "wup",
            Metric::Cosine => "cos",
            Metric::Jaccard => "jac",
        }
    }
}

/// Accumulated inner products of one merge-join pass over two profiles.
struct JoinSums {
    /// Σ pn·pc over common items.
    dot: f64,
    /// Σ pn² over common items (‖sub(Pn,Pc)‖²).
    sub_norm2: f64,
    /// Number of common items where both scores are > 0.5 (common likes).
    common_likes: usize,
    /// Number of items liked in at least one of the two profiles.
    union_likes: usize,
}

#[inline]
fn merge_join(pn: &Profile, pc: &Profile) -> JoinSums {
    let (a, b) = (pn.entries(), pc.entries());
    let mut sums = JoinSums {
        dot: 0.0,
        sub_norm2: 0.0,
        common_likes: 0,
        union_likes: 0,
    };
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let (ea, eb) = (&a[i], &b[j]);
        match ea.item.cmp(&eb.item) {
            std::cmp::Ordering::Less => {
                if ea.score > 0.5 {
                    sums.union_likes += 1;
                }
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                if eb.score > 0.5 {
                    sums.union_likes += 1;
                }
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                let (sa, sb) = (ea.score as f64, eb.score as f64);
                sums.dot += sa * sb;
                sums.sub_norm2 += sa * sa;
                let (la, lb) = (ea.score > 0.5, eb.score > 0.5);
                if la && lb {
                    sums.common_likes += 1;
                }
                if la || lb {
                    sums.union_likes += 1;
                }
                i += 1;
                j += 1;
            }
        }
    }
    for e in &a[i..] {
        if e.score > 0.5 {
            sums.union_likes += 1;
        }
    }
    for e in &b[j..] {
        if e.score > 0.5 {
            sums.union_likes += 1;
        }
    }
    sums
}

/// Fingerprint zero-rejection: `true` proves the two profiles share no
/// rated item (see the module docs for why every metric is then exactly 0).
#[inline]
fn provably_disjoint(pn: &Profile, pc: &Profile) -> bool {
    pn.fingerprint() & pc.fingerprint() == 0
}

/// Common-item sums (`dot`, `sub_norm2`) for the metrics that never look at
/// non-shared items — WUP (its union terms are the memoized norms) and
/// cosine. Size-adaptive: profile sizes in a live overlay are wildly skewed
/// (item profiles aggregate hundreds of entries, view snapshots often hold
/// a handful), and the full merge scan pays for the big side even when the
/// intersection is tiny. When one side is much smaller, iterate it and
/// binary-search the other; both strategies visit the common items in
/// ascending id order, so the f64 accumulation sequence — and therefore
/// every result bit — matches the reference merge-join exactly.
#[inline]
fn common_sums(pn: &Profile, pc: &Profile) -> (f64, f64) {
    let (a, b) = (pn.entries(), pc.entries());
    let (mut dot, mut sub_norm2) = (0.0f64, 0.0f64);
    // `own_is_small` tracks which side of the asymmetric sums the probe
    // entry belongs to: `sub_norm2` is always Σ pn² over common items.
    let (small, big, own_is_small) = if a.len() * 8 <= b.len() {
        (a, b, true)
    } else if b.len() * 8 <= a.len() {
        (b, a, false)
    } else {
        // Comparable sizes: the linear merge is cheaper than n·log m.
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            let (ea, eb) = (&a[i], &b[j]);
            match ea.item.cmp(&eb.item) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let (sa, sb) = (ea.score as f64, eb.score as f64);
                    dot += sa * sb;
                    sub_norm2 += sa * sa;
                    i += 1;
                    j += 1;
                }
            }
        }
        return (dot, sub_norm2);
    };
    // `from` narrows the search window: the small side ascends, so matches
    // can only lie to the right of the previous one.
    let mut from = 0;
    for e in small {
        match big[from..].binary_search_by_key(&e.item, |x| x.item) {
            Ok(k) => {
                let other = &big[from + k];
                let (sa, sb) = if own_is_small {
                    (e.score as f64, other.score as f64)
                } else {
                    (other.score as f64, e.score as f64)
                };
                dot += sa * sb;
                sub_norm2 += sa * sa;
                from += k + 1;
            }
            Err(k) => from += k,
        }
        if from >= big.len() {
            break;
        }
    }
    (dot, sub_norm2)
}

/// The asymmetric WUP metric (§II). Returns 0 when either norm vanishes
/// (no overlap, or candidate with no likes).
pub fn wup_similarity(pn: &Profile, pc: &Profile) -> f64 {
    if provably_disjoint(pn, pc) {
        return 0.0;
    }
    let (dot, sub_norm2) = common_sums(pn, pc);
    let denom = sub_norm2.sqrt() * pc.norm();
    if denom <= 0.0 {
        0.0
    } else {
        dot / denom
    }
}

/// Classic cosine similarity over the full score vectors.
pub fn cosine_similarity(pn: &Profile, pc: &Profile) -> f64 {
    if provably_disjoint(pn, pc) {
        return 0.0;
    }
    let (dot, _) = common_sums(pn, pc);
    let denom = pn.norm() * pc.norm();
    if denom <= 0.0 {
        0.0
    } else {
        dot / denom
    }
}

/// Jaccard index over the *liked* item sets.
pub fn jaccard_similarity(pn: &Profile, pc: &Profile) -> f64 {
    if provably_disjoint(pn, pc) {
        return 0.0;
    }
    let sums = merge_join(pn, pc);
    if sums.union_likes == 0 {
        0.0
    } else {
        sums.common_likes as f64 / sums.union_likes as f64
    }
}

/// The scan-only reference implementations, bypassing the fingerprint fast
/// path. Exposed (hidden) so property tests can assert the fast path is
/// bit-identical to the scalar merge-join over arbitrary profiles.
#[doc(hidden)]
pub mod reference {
    use super::{merge_join, Profile};

    pub fn wup_similarity(pn: &Profile, pc: &Profile) -> f64 {
        let sums = merge_join(pn, pc);
        let denom = sums.sub_norm2.sqrt() * pc.norm();
        if denom <= 0.0 {
            0.0
        } else {
            sums.dot / denom
        }
    }

    pub fn cosine_similarity(pn: &Profile, pc: &Profile) -> f64 {
        let sums = merge_join(pn, pc);
        let denom = pn.norm() * pc.norm();
        if denom <= 0.0 {
            0.0
        } else {
            sums.dot / denom
        }
    }

    pub fn jaccard_similarity(pn: &Profile, pc: &Profile) -> f64 {
        let sums = merge_join(pn, pc);
        if sums.union_likes == 0 {
            0.0
        } else {
            sums.common_likes as f64 / sums.union_likes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ProfileEntry;
    use proptest::prelude::*;

    fn profile(likes: &[u64], dislikes: &[u64]) -> Profile {
        Profile::from_entries(
            likes
                .iter()
                .map(|&i| ProfileEntry {
                    item: i,
                    timestamp: 0,
                    score: 1.0,
                })
                .chain(dislikes.iter().map(|&i| ProfileEntry {
                    item: i,
                    timestamp: 0,
                    score: 0.0,
                })),
        )
    }

    #[test]
    fn identical_binary_profiles_score_one() {
        let p = profile(&[1, 2, 3], &[]);
        assert!((wup_similarity(&p, &p) - 1.0).abs() < 1e-9);
        assert!((cosine_similarity(&p, &p) - 1.0).abs() < 1e-9);
        assert!((jaccard_similarity(&p, &p) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_profiles_score_zero() {
        let a = profile(&[1, 2], &[]);
        let b = profile(&[3, 4], &[]);
        assert_eq!(wup_similarity(&a, &b), 0.0);
        assert_eq!(cosine_similarity(&a, &b), 0.0);
        assert_eq!(jaccard_similarity(&a, &b), 0.0);
    }

    #[test]
    fn wup_formula_matches_hand_computation() {
        // n likes {1,2,3}; c rated {1,2,4}: liked 1, disliked 2, liked 4.
        // common likes = |{1}| = 1
        // sub(Pn,Pc) = entries of n on items rated by c = {1,2} → norm √2
        // |likes(c)| = 2 → norm √2
        // sim = 1 / (√2·√2) = 0.5
        let n = profile(&[1, 2, 3], &[]);
        let c = profile(&[1, 4], &[2]);
        assert!((wup_similarity(&n, &c) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn wup_is_asymmetric() {
        let n = profile(&[1, 2, 3], &[]);
        let c = profile(&[1], &[]);
        // sim(n→c): common=1, sub={1}→1, likes(c)=1 → 1.0
        assert!((wup_similarity(&n, &c) - 1.0).abs() < 1e-9);
        // sim(c→n): common=1, sub={1}→1, likes(n)=3 → 1/√3
        assert!((wup_similarity(&c, &n) - 1.0 / 3f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn wup_penalizes_explicit_dislikes() {
        let n = profile(&[1, 2], &[]);
        let agreeing = profile(&[1, 2], &[]);
        // Candidate that additionally *dislikes* item 2 that n likes.
        let disliking = profile(&[1], &[2]);
        assert!(
            wup_similarity(&n, &agreeing) > wup_similarity(&n, &disliking),
            "explicit dislike must reduce similarity"
        );
    }

    #[test]
    fn wup_favors_small_restrictive_profiles() {
        // Both candidates like item 1 (which n likes); the second also likes
        // many items n has never seen. The small profile must win (§II-D:
        // joining nodes with small popular profiles are favored).
        let n = profile(&[1], &[]);
        let small = profile(&[1], &[]);
        let big = profile(&[1, 10, 11, 12, 13], &[]);
        assert!(wup_similarity(&n, &small) > wup_similarity(&n, &big));
    }

    #[test]
    fn cosine_counts_only_common_likes_in_dot() {
        // likes(a)={1,2}, likes(b)={2,3}: dot=1, norms √2·√2 ⇒ 0.5.
        let a = profile(&[1, 2], &[]);
        let b = profile(&[2, 3], &[]);
        assert!((cosine_similarity(&a, &b) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn jaccard_counts_union() {
        let a = profile(&[1, 2], &[]);
        let b = profile(&[2, 3], &[]);
        assert!((jaccard_similarity(&a, &b) - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_profiles_are_zero_everywhere() {
        let e = Profile::new();
        let p = profile(&[1], &[]);
        for m in [Metric::Wup, Metric::Cosine, Metric::Jaccard] {
            assert_eq!(m.score(&e, &p), 0.0);
            assert_eq!(m.score(&p, &e), 0.0);
            assert_eq!(m.score(&e, &e), 0.0);
        }
    }

    #[test]
    fn works_with_real_valued_item_profiles() {
        // Item profile with averaged scores vs a binary user profile.
        let mut item_profile = Profile::new();
        item_profile.add_to_news_profile(ProfileEntry {
            item: 1,
            timestamp: 0,
            score: 1.0,
        });
        item_profile.add_to_news_profile(ProfileEntry {
            item: 1,
            timestamp: 0,
            score: 0.0,
        });
        item_profile.add_to_news_profile(ProfileEntry {
            item: 2,
            timestamp: 0,
            score: 1.0,
        });
        let user = profile(&[1, 2], &[]);
        let s = wup_similarity(&item_profile, &user);
        // dot = 0.5·1 + 1·1 = 1.5 ; ‖sub‖ = √(0.25+1) ; ‖Pc‖ = √2
        let expected = 1.5 / ((1.25f64).sqrt() * (2f64).sqrt());
        assert!((s - expected).abs() < 1e-6);
    }

    #[test]
    fn metric_labels() {
        assert_eq!(Metric::Wup.label(), "wup");
        assert_eq!(Metric::Cosine.label(), "cos");
        assert_eq!(Metric::Jaccard.label(), "jac");
    }

    proptest! {
        #[test]
        fn scores_are_bounded(
            la in prop::collection::btree_set(0u64..40, 0..20),
            da in prop::collection::btree_set(0u64..40, 0..20),
            lb in prop::collection::btree_set(0u64..40, 0..20),
            db in prop::collection::btree_set(0u64..40, 0..20),
        ) {
            let a_likes: Vec<u64> = la.iter().copied().collect();
            let a_dislikes: Vec<u64> = da.difference(&la).copied().collect();
            let b_likes: Vec<u64> = lb.iter().copied().collect();
            let b_dislikes: Vec<u64> = db.difference(&lb).copied().collect();
            let a = profile(&a_likes, &a_dislikes);
            let b = profile(&b_likes, &b_dislikes);
            for m in [Metric::Wup, Metric::Cosine, Metric::Jaccard] {
                let s = m.score(&a, &b);
                prop_assert!((0.0..=1.0 + 1e-9).contains(&s), "{} out of range: {s}", m.label());
            }
        }

        /// The fast paths must be invisible in the output: every metric
        /// returns the *bit-identical* f64 the scan-only reference
        /// produces, over random pairs of mixed binary/real-valued profiles
        /// (narrow id range ⇒ plenty of overlapping pairs; disjoint ranges
        /// covered by the offset). The size ranges are deliberately skewed
        /// (`a` small, `b` up to ~150 entries) so the size-adaptive
        /// binary-search join — both orientations — is exercised alongside
        /// the balanced merge and the fingerprint rejection.
        #[test]
        fn fast_path_is_bit_identical_to_scalar_merge_join(
            ea in prop::collection::vec((0u64..60, prop::bool::ANY), 0..40),
            eb in prop::collection::vec((0u64..200, 0u32..5), 0..150),
            offset_class in 0u64..3,
        ) {
            // 0 = full overlap range, 30 = partial, 1000 = disjoint ids.
            let offset = [0u64, 30, 1_000][offset_class as usize];
            let a = Profile::from_entries(ea.iter().map(|&(i, liked)| ProfileEntry {
                item: i,
                timestamp: 0,
                score: if liked { 1.0 } else { 0.0 },
            }));
            // Real-valued scores (item-profile style) on the candidate side.
            let b = Profile::from_entries(eb.iter().map(|&(i, q)| ProfileEntry {
                item: i + offset,
                timestamp: 0,
                score: q as f32 / 4.0,
            }));
            for (fast, slow) in [
                (wup_similarity(&a, &b), reference::wup_similarity(&a, &b)),
                (cosine_similarity(&a, &b), reference::cosine_similarity(&a, &b)),
                (jaccard_similarity(&a, &b), reference::jaccard_similarity(&a, &b)),
                (wup_similarity(&b, &a), reference::wup_similarity(&b, &a)),
            ] {
                prop_assert_eq!(fast.to_bits(), slow.to_bits(),
                    "fast {fast} != reference {slow}");
            }
        }

        #[test]
        fn cosine_is_symmetric(
            la in prop::collection::btree_set(0u64..30, 0..15),
            lb in prop::collection::btree_set(0u64..30, 0..15),
        ) {
            let a = profile(&la.iter().copied().collect::<Vec<_>>(), &[]);
            let b = profile(&lb.iter().copied().collect::<Vec<_>>(), &[]);
            let d = (cosine_similarity(&a, &b) - cosine_similarity(&b, &a)).abs();
            prop_assert!(d < 1e-12);
        }
    }
}
