//! Cold-start bootstrap (paper §II-D).
//!
//! A node joining for the first time contacts a random node, inherits its
//! RPS and WUP views, and builds a fresh profile by rating the 3 most
//! popular news items found in the profiles of the inherited RPS view. The
//! resulting profile rarely matches the newcomer's interests, but — because
//! the WUP metric favors small profiles containing popular items — it makes
//! the newcomer visible to many nodes, which quickly sends it items it can
//! rate genuinely.

use crate::item::{ItemId, Timestamp};
use crate::profile::SharedProfile;
use serde::{Deserialize, Serialize};
use whatsup_gossip::Descriptor;

/// The view snapshots a joining node inherits from its contact.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ColdStart {
    pub rps_view: Vec<Descriptor<SharedProfile>>,
    pub wup_view: Vec<Descriptor<SharedProfile>>,
}

/// Returns the `k` most *liked* items across the given descriptors'
/// profiles, each with the freshest timestamp observed for it. Popularity is
/// the number of profiles liking the item; ties break on higher id
/// (an arbitrary but deterministic rule).
pub fn most_popular_items(
    descriptors: &[Descriptor<SharedProfile>],
    k: usize,
) -> Vec<(ItemId, Timestamp)> {
    // Profiles are tiny (window-bounded); a flat vec beats a hash map here.
    let mut tally: Vec<(ItemId, u32, Timestamp)> = Vec::new();
    for d in descriptors {
        for id in d.payload.liked_items() {
            let ts = d.payload.get(id).map(|e| e.timestamp).unwrap_or(0);
            match tally.iter_mut().find(|(i, _, _)| *i == id) {
                Some((_, count, newest)) => {
                    *count += 1;
                    *newest = (*newest).max(ts);
                }
                None => tally.push((id, 1, ts)),
            }
        }
    }
    tally.sort_by(|a, b| b.1.cmp(&a.1).then(b.0.cmp(&a.0)));
    tally.truncate(k);
    tally.into_iter().map(|(id, _, ts)| (id, ts)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{Profile, ProfileEntry};

    fn desc(
        node: u32,
        likes: &[(ItemId, Timestamp)],
        dislikes: &[ItemId],
    ) -> Descriptor<SharedProfile> {
        let p = Profile::from_entries(
            likes
                .iter()
                .map(|&(i, t)| ProfileEntry {
                    item: i,
                    timestamp: t,
                    score: 1.0,
                })
                .chain(dislikes.iter().map(|&i| ProfileEntry {
                    item: i,
                    timestamp: 0,
                    score: 0.0,
                })),
        );
        Descriptor::fresh(node, SharedProfile::new(p))
    }

    #[test]
    fn ranks_by_like_count() {
        let views = vec![
            desc(1, &[(10, 1), (20, 1)], &[]),
            desc(2, &[(10, 2)], &[]),
            desc(3, &[(10, 3), (30, 1)], &[]),
        ];
        let top = most_popular_items(&views, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, 10);
        assert_eq!(top[0].1, 3, "freshest timestamp kept");
    }

    #[test]
    fn dislikes_do_not_count_as_popularity() {
        let views = vec![
            desc(1, &[(7, 0)], &[9]),
            desc(2, &[], &[9]),
            desc(3, &[], &[9]),
        ];
        let top = most_popular_items(&views, 1);
        assert_eq!(top[0].0, 7);
    }

    #[test]
    fn empty_views_give_empty_bootstrap() {
        assert!(most_popular_items(&[], 3).is_empty());
        let views = vec![desc(1, &[], &[])];
        assert!(most_popular_items(&views, 3).is_empty());
    }

    #[test]
    fn requests_more_than_available() {
        let views = vec![desc(1, &[(5, 0)], &[])];
        let top = most_popular_items(&views, 3);
        assert_eq!(top.len(), 1);
    }

    #[test]
    fn ties_are_deterministic() {
        let views = vec![desc(1, &[(5, 0), (9, 0)], &[])];
        let a = most_popular_items(&views, 1);
        let b = most_popular_items(&views, 1);
        assert_eq!(a, b);
        assert_eq!(a[0].0, 9, "tie breaks on higher id");
    }
}
