//! The Digg-like workload (paper §IV-A).
//!
//! Digg disseminated items along an explicit follower graph (cascading).
//! The paper's crawl: 750 users, 2500 items, 40 categories, 3 weeks of
//! traces. User interests were *de-biased*: a user is interested in every
//! item of the categories of the items she generated — not only those her
//! friends forwarded.
//!
//! Our substitute keeps that exact structure: Zipf-popular categories, users
//! interested in a handful of categories (weighted by the same Zipf), likes
//! = category membership, and a *directed* preferential-attachment follower
//! graph with interest homophily. Direction matters: a digg only reaches the
//! digger's followers, so most users expose a cascade to only a couple of
//! peers — branching stays subcritical and recall collapses (Table V's
//! 0.09), while homophily keeps the few reached followers interested
//! (precision ≈ WhatsUp's). The paper's §V-C analysis — "the explicit
//! social network does not necessarily connect all the nodes interested in
//! a given topic" — is exactly this structure.

use crate::matrix::LikeMatrix;
use crate::spec::{Dataset, ItemSpec};
use rand::distributions::WeightedIndex;
use rand::prelude::Distribution;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use whatsup_graph::Graph;

/// Generator knobs for the Digg-like workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiggConfig {
    pub n_users: usize,
    pub n_items: usize,
    pub n_categories: usize,
    /// Zipf exponent of category popularity.
    pub zipf_s: f64,
    /// Categories per user: uniform in `[min, max]`.
    pub min_interests: usize,
    pub max_interests: usize,
    /// Accounts each new user follows when joining.
    pub attachment: usize,
    /// Homophily weight: how strongly users prefer following accounts that
    /// share their categories (0 = pure preferential attachment).
    pub homophily: f64,
}

impl DiggConfig {
    /// Paper-scale configuration (Table I: 750 users, 2500 items, §IV-A: 40
    /// categories).
    pub fn paper() -> Self {
        Self {
            n_users: 750,
            n_items: 2500,
            n_categories: 40,
            zipf_s: 1.0,
            min_interests: 2,
            max_interests: 6,
            attachment: 2,
            homophily: 4.0,
        }
    }

    pub fn scaled(mut self, scale: f64) -> Self {
        let scale = scale.clamp(0.01, 1.0);
        self.n_users = ((self.n_users as f64 * scale) as usize).max(20);
        self.n_items = ((self.n_items as f64 * scale) as usize).max(20);
        self.n_categories =
            ((self.n_categories as f64 * scale.sqrt()) as usize).clamp(4, self.n_categories);
        self
    }
}

/// Zipf weights `1/k^s` for ranks `1..=n`.
fn zipf_weights(n: usize, s: f64) -> Vec<f64> {
    (1..=n).map(|k| 1.0 / (k as f64).powf(s)).collect()
}

/// Generates the Digg-like workload deterministically from `seed`.
pub fn generate(cfg: &DiggConfig, seed: u64) -> Dataset {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let weights = zipf_weights(cfg.n_categories, cfg.zipf_s);
    let cat_dist = WeightedIndex::new(&weights).expect("non-empty categories");

    // User interests: a set of categories, Zipf-weighted.
    let mut interests: Vec<Vec<u32>> = Vec::with_capacity(cfg.n_users);
    for _ in 0..cfg.n_users {
        let k = rng.gen_range(cfg.min_interests..=cfg.max_interests);
        let mut cats: Vec<u32> = Vec::with_capacity(k);
        let mut guard = 0;
        while cats.len() < k && guard < 50 * k {
            guard += 1;
            let c = cat_dist.sample(&mut rng) as u32;
            if !cats.contains(&c) {
                cats.push(c);
            }
        }
        cats.sort_unstable();
        interests.push(cats);
    }

    // Likes: strict category membership (the paper's de-biased definition).
    let mut likes = LikeMatrix::new(cfg.n_users, cfg.n_items);
    let mut items = Vec::with_capacity(cfg.n_items);
    for index in 0..cfg.n_items {
        let topic = cat_dist.sample(&mut rng) as u32;
        for (u, cats) in interests.iter().enumerate() {
            if cats.binary_search(&topic).is_ok() {
                likes.set(u, index, true);
            }
        }
        // Source: an interested user ("the categories of the news items she
        // generates" define her interests — generators are interested).
        let interested = likes.interested_users(index);
        let source = if interested.is_empty() {
            // No user holds this category: assign a random generator and
            // extend her interests to it, as the crawl's definition implies.
            let u = rng.gen_range(0..cfg.n_users);
            likes.set(u, index, true);
            u as u32
        } else {
            interested[rng.gen_range(0..interested.len())]
        };
        items.push(ItemSpec {
            index: index as u32,
            topic,
            source,
        });
    }

    let social = follower_graph(cfg, &interests, &mut rng);
    let d = Dataset {
        name: "digg".into(),
        items,
        likes,
        social: Some(social),
        n_topics: cfg.n_categories as u32,
        feeds: None,
    };
    debug_assert!(d.validate().is_ok());
    d
}

/// Directed, homophilous preferential-attachment follower graph.
///
/// Users join one by one and follow `attachment` existing accounts, chosen
/// with weight `(followers + 1) · (1 + homophily · shared_categories)`.
/// The stored edge direction is the *dissemination* direction: an edge
/// `v → u` means `u` follows `v`, so `neighbors(v)` are v's followers.
fn follower_graph(cfg: &DiggConfig, interests: &[Vec<u32>], rng: &mut ChaCha8Rng) -> Graph {
    let n = interests.len();
    let mut g = Graph::new(n);
    let mut followers = vec![0usize; n];
    for u in 1..n {
        let m = cfg.attachment.min(u);
        let mut weights: Vec<f64> = (0..u)
            .map(|v| {
                let shared = interests[u]
                    .iter()
                    .filter(|c| interests[v].binary_search(c).is_ok())
                    .count();
                (followers[v] + 1) as f64 * (1.0 + cfg.homophily * shared as f64)
            })
            .collect();
        let mut chosen: Vec<usize> = Vec::with_capacity(m);
        for _ in 0..m {
            let Ok(dist) = WeightedIndex::new(&weights) else {
                break;
            };
            let v = dist.sample(rng);
            chosen.push(v);
            weights[v] = 0.0; // follow each account at most once
        }
        for v in chosen {
            g.add_edge(v as u32, u as u32);
            followers[v] += 1;
        }
    }
    g.dedup();
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> DiggConfig {
        DiggConfig::paper().scaled(0.1)
    }

    #[test]
    fn paper_scale_matches_table_i() {
        let cfg = DiggConfig::paper();
        assert_eq!(cfg.n_users, 750);
        assert_eq!(cfg.n_items, 2500);
        assert_eq!(cfg.n_categories, 40);
    }

    #[test]
    fn generated_dataset_is_valid_with_graph() {
        let d = generate(&small(), 5);
        assert!(d.validate().is_ok());
        let g = d.social.as_ref().expect("digg has a social graph");
        assert_eq!(g.len(), d.n_users());
        assert!(g.edge_count() > 0);
    }

    #[test]
    fn category_popularity_is_skewed() {
        let d = generate(&DiggConfig::paper().scaled(0.3), 5);
        let mut per_topic = vec![0usize; d.n_topics as usize];
        for it in &d.items {
            per_topic[it.topic as usize] += 1;
        }
        let max = *per_topic.iter().max().unwrap();
        let min = *per_topic.iter().min().unwrap();
        assert!(
            max >= 4 * (min + 1),
            "Zipf skew missing: max={max} min={min}"
        );
    }

    #[test]
    fn likes_follow_categories() {
        // Every item's interested set must be exactly the users holding its
        // category (modulo the forced source).
        let d = generate(&small(), 5);
        // Reconstruct interests from the matrix: a user interested in one
        // item of a topic must like (almost) all items of that topic.
        let by_topic: Vec<Vec<u32>> = (0..d.n_topics)
            .map(|t| {
                d.items
                    .iter()
                    .filter(|i| i.topic == t)
                    .map(|i| i.index)
                    .collect()
            })
            .collect();
        for topic_items in by_topic.iter().filter(|v| v.len() >= 2) {
            let first = topic_items[0] as usize;
            for &u in &d.likes.interested_users(first) {
                let liked_all = topic_items
                    .iter()
                    .filter(|&&i| d.likes.likes(u as usize, i as usize))
                    .count();
                // Forced sources may add one extra user to a single item, so
                // tolerate a single miss.
                assert!(
                    liked_all >= topic_items.len() - 1,
                    "user {u} likes only {liked_all}/{} of a topic",
                    topic_items.len()
                );
            }
        }
    }

    #[test]
    fn deterministic() {
        let a = generate(&small(), 5);
        let b = generate(&small(), 5);
        assert_eq!(a.likes, b.likes);
        assert_eq!(a.social, b.social);
    }
}
