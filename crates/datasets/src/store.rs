//! Adaptive like storage: dense bit-plane or compressed sparse rows.
//!
//! The dense [`LikeMatrix`] costs `n_users × n_items` **bits** regardless
//! of how many likes exist — ~12.5 GB at 1M users × 100k items. Real
//! interest data is sparse: a user likes O(interests) items, not
//! O(items). [`CsrLikes`] stores exactly the liked `(user, item)` pairs as
//! per-user sorted item lists behind a prefix-offset index — the classic
//! CSR layout — at 4 bytes per like plus 4 bytes per user.
//!
//! [`LikeStore`] picks whichever representation is smaller **by measured
//! byte cost** (not a density heuristic), so genuinely dense datasets —
//! the paper's survey traces run ~35% like rate over ~100 items, where
//! the bit-plane wins — keep the dense form and its O(1) probes, while
//! item-rich populations switch to CSR. Both answer `likes` identically;
//! the choice is invisible to the simulation (and bit-identity tests pin
//! it so).

use crate::matrix::LikeMatrix;

/// Compressed sparse-row likes: row `u`'s liked item indices are
/// `items[offsets[u] .. offsets[u + 1]]`, ascending.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrLikes {
    n_items: usize,
    /// `n_users + 1` prefix offsets into [`Self::items`].
    offsets: Vec<u32>,
    /// Liked item indices, ascending within each row.
    items: Vec<u32>,
}

impl CsrLikes {
    /// Builds from a dense matrix (row order preserved).
    pub fn from_matrix(m: &LikeMatrix) -> Self {
        let mut offsets = Vec::with_capacity(m.n_users() + 1);
        let mut items = Vec::new();
        offsets.push(0u32);
        for user in 0..m.n_users() {
            for item in 0..m.n_items() {
                if m.likes(user, item) {
                    items.push(item as u32);
                }
            }
            offsets.push(items.len() as u32);
        }
        Self {
            n_items: m.n_items(),
            offsets,
            items,
        }
    }

    /// Rebuilds from wire parts.
    ///
    /// # Panics
    /// Panics if the offsets are not a monotone prefix index over `items`.
    pub fn from_parts(n_items: usize, offsets: Vec<u32>, items: Vec<u32>) -> Self {
        assert!(!offsets.is_empty(), "offsets need a leading 0");
        assert_eq!(offsets[0], 0, "offsets need a leading 0");
        assert_eq!(*offsets.last().unwrap() as usize, items.len());
        assert!(offsets.windows(2).all(|w| w[0] <= w[1]), "offsets monotone");
        Self {
            n_items,
            offsets,
            items,
        }
    }

    pub fn n_users(&self) -> usize {
        self.offsets.len() - 1
    }

    pub fn n_items(&self) -> usize {
        self.n_items
    }

    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    pub fn items(&self) -> &[u32] {
        &self.items
    }

    /// Row `user`'s liked item indices, ascending.
    pub fn row(&self, user: usize) -> &[u32] {
        let lo = self.offsets[user] as usize;
        let hi = self.offsets[user + 1] as usize;
        &self.items[lo..hi]
    }

    pub fn likes(&self, user: usize, item: usize) -> bool {
        self.row(user).binary_search(&(item as u32)).is_ok()
    }

    /// Total number of likes.
    pub fn nnz(&self) -> usize {
        self.items.len()
    }

    /// Payload bytes of this representation.
    pub fn payload_bytes(&self) -> usize {
        4 * (self.offsets.len() + self.items.len())
    }
}

/// Like storage in whichever representation costs fewer bytes.
#[derive(Debug, Clone, PartialEq)]
pub enum LikeStore {
    Dense(LikeMatrix),
    Sparse(CsrLikes),
}

impl LikeStore {
    /// Chooses the smaller representation for `m` by actual byte cost.
    pub fn from_matrix(m: &LikeMatrix) -> Self {
        let dense_bytes = 8 * m.words().len();
        let nnz: usize = m.words().iter().map(|w| w.count_ones() as usize).sum();
        let sparse_bytes = 4 * (m.n_users() + 1 + nnz);
        if sparse_bytes < dense_bytes {
            Self::Sparse(CsrLikes::from_matrix(m))
        } else {
            Self::Dense(m.clone())
        }
    }

    pub fn n_users(&self) -> usize {
        match self {
            Self::Dense(m) => m.n_users(),
            Self::Sparse(c) => c.n_users(),
        }
    }

    pub fn n_items(&self) -> usize {
        match self {
            Self::Dense(m) => m.n_items(),
            Self::Sparse(c) => c.n_items(),
        }
    }

    pub fn likes(&self, user: usize, item: usize) -> bool {
        match self {
            Self::Dense(m) => m.likes(user, item),
            Self::Sparse(c) => c.likes(user, item),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(n_users: usize, n_items: usize, f: impl Fn(usize, usize) -> bool) -> LikeMatrix {
        let mut m = LikeMatrix::new(n_users, n_items);
        for u in 0..n_users {
            for i in 0..n_items {
                if f(u, i) {
                    m.set(u, i, true);
                }
            }
        }
        m
    }

    #[test]
    fn csr_answers_like_the_matrix() {
        let m = matrix(17, 130, |u, i| (u * 31 + i * 7) % 5 == 0);
        let c = CsrLikes::from_matrix(&m);
        assert_eq!(c.n_users(), 17);
        assert_eq!(c.n_items(), 130);
        for u in 0..17 {
            for i in 0..130 {
                assert_eq!(c.likes(u, i), m.likes(u, i), "({u},{i})");
            }
        }
    }

    #[test]
    fn store_picks_by_byte_cost() {
        // Dense-ish: 35% of 100 items liked → bit-plane (16 B/row) beats
        // CSR (~140 B/row).
        let dense = matrix(10, 100, |u, i| (u + i) % 3 == 0);
        assert!(matches!(
            LikeStore::from_matrix(&dense),
            LikeStore::Dense(_)
        ));
        // Sparse: 3 likes over 10_000 items → CSR (~16 B/row) beats the
        // bit-plane (1250 B/row).
        let sparse = matrix(10, 10_000, |_, i| i < 3);
        assert!(matches!(
            LikeStore::from_matrix(&sparse),
            LikeStore::Sparse(_)
        ));
    }

    #[test]
    fn csr_roundtrips_through_parts() {
        let m = matrix(9, 4_000, |u, i| i % (u + 2) == 0 && i % 97 == 0);
        let c = CsrLikes::from_matrix(&m);
        let r = CsrLikes::from_parts(c.n_items(), c.offsets().to_vec(), c.items().to_vec());
        assert_eq!(c, r);
    }

    #[test]
    #[should_panic(expected = "offsets monotone")]
    fn malformed_offsets_rejected() {
        CsrLikes::from_parts(10, vec![0, 5, 2, 6], (0..6).collect());
    }
}
