//! The survey-like workload (paper §IV-A).
//!
//! The paper surveyed 120 colleagues on 200 RSS items spanning mixed topics
//! (culture, politics, people, sports, …), then replicated each user and
//! item 4× to scale the system (Table I lists 480 users / 1000 news).
//!
//! Our substitute generates the *base* population, then applies the same ×4
//! replication. The base model is calibrated to the statistics the paper
//! exposes:
//!
//! * mean like rate ≈ 0.35 — Table III's homogeneous gossip reaches
//!   precision 0.35 at recall 0.99, and flooding precision equals the mean
//!   like rate;
//! * popularity mass concentrated below 0.5 with a thin tail of near-
//!   universally liked items (Fig. 10's distribution curve);
//! * overlapping interests (unlike the synthetic communities), which is what
//!   gives cosine similarity its hub problem (§V-A).
//!
//! Model: users hold a subset of topics (Zipf-weighted so some topics are
//! mainstream); each item has a topic and a quality factor; a user's like
//! probability is high for in-topic items scaled by quality, low otherwise;
//! a small fraction of items is "viral" and liked by nearly everyone.

use crate::matrix::LikeMatrix;
use crate::spec::{Dataset, ItemSpec};
use rand::distributions::WeightedIndex;
use rand::prelude::Distribution;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Generator knobs for the survey-like workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurveyConfig {
    /// Base users before replication (paper: 120).
    pub base_users: usize,
    /// Base items before replication (250 × 4 = Table I's 1000; the paper
    /// text says 200 — Table I wins, see DESIGN.md §3).
    pub base_items: usize,
    /// Replication factor (paper: 4).
    pub replication: usize,
    pub n_topics: usize,
    /// Zipf exponent for topic mainstream-ness.
    pub zipf_s: f64,
    /// Topics per user: uniform in `[min, max]`.
    pub min_interests: usize,
    pub max_interests: usize,
    /// P(like | in-topic) before quality scaling.
    pub in_topic_like: f64,
    /// P(like | off-topic) before quality scaling.
    pub off_topic_like: f64,
    /// Fraction of viral items.
    pub viral_fraction: f64,
    /// P(like | viral item), any user.
    pub viral_like: f64,
    /// Number of coarse RSS feeds (explicit pub/sub topics, §IV-B).
    pub n_feeds: usize,
}

impl SurveyConfig {
    /// Paper-scale configuration.
    pub fn paper() -> Self {
        Self {
            base_users: 120,
            base_items: 250,
            replication: 4,
            n_topics: 20,
            zipf_s: 0.7,
            min_interests: 4,
            max_interests: 7,
            in_topic_like: 0.82,
            off_topic_like: 0.07,
            viral_fraction: 0.04,
            viral_like: 0.92,
            n_feeds: 6,
        }
    }

    pub fn scaled(mut self, scale: f64) -> Self {
        let scale = scale.clamp(0.01, 1.0);
        self.base_users = ((self.base_users as f64 * scale) as usize).max(15);
        self.base_items = ((self.base_items as f64 * scale) as usize).max(20);
        self
    }

    /// Total users after replication.
    pub fn n_users(&self) -> usize {
        self.base_users * self.replication
    }

    /// Total items after replication.
    pub fn n_items(&self) -> usize {
        self.base_items * self.replication
    }
}

/// Generates the survey-like workload deterministically from `seed`.
pub fn generate(cfg: &SurveyConfig, seed: u64) -> Dataset {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let weights: Vec<f64> = (1..=cfg.n_topics)
        .map(|k| 1.0 / (k as f64).powf(cfg.zipf_s))
        .collect();
    let topic_dist = WeightedIndex::new(&weights).expect("non-empty topics");

    // Base users: a topic set each.
    let mut interests: Vec<Vec<u32>> = Vec::with_capacity(cfg.base_users);
    for _ in 0..cfg.base_users {
        let k = rng.gen_range(cfg.min_interests..=cfg.max_interests);
        let mut cats: Vec<u32> = Vec::with_capacity(k);
        let mut guard = 0;
        while cats.len() < k && guard < 50 * k {
            guard += 1;
            let c = topic_dist.sample(&mut rng) as u32;
            if !cats.contains(&c) {
                cats.push(c);
            }
        }
        cats.sort_unstable();
        interests.push(cats);
    }

    // Base like matrix.
    let mut base = LikeMatrix::new(cfg.base_users, cfg.base_items);
    let mut base_topics = Vec::with_capacity(cfg.base_items);
    for item in 0..cfg.base_items {
        let topic = topic_dist.sample(&mut rng) as u32;
        base_topics.push(topic);
        let viral = rng.gen_bool(cfg.viral_fraction);
        let quality: f64 = rng.gen_range(0.55..1.25);
        for (u, cats) in interests.iter().enumerate() {
            let p = if viral {
                cfg.viral_like
            } else if cats.binary_search(&topic).is_ok() {
                (cfg.in_topic_like * quality).min(0.98)
            } else {
                (cfg.off_topic_like * quality).min(0.98)
            };
            if rng.gen_bool(p) {
                base.set(u, item, true);
            }
        }
        // Every survey item was rated; ensure at least one liker to source it.
        if base.interested_count(item) == 0 {
            let u = rng.gen_range(0..cfg.base_users);
            base.set(u, item, true);
        }
    }

    // ×replication: user clone (u, r) likes item clone (i, r') iff u likes i
    // — exactly the paper's instance duplication, which preserves all
    // per-pair statistics while scaling the population.
    let n_users = cfg.n_users();
    let n_items = cfg.n_items();
    let mut likes = LikeMatrix::new(n_users, n_items);
    for bu in 0..cfg.base_users {
        for bi in 0..cfg.base_items {
            if !base.likes(bu, bi) {
                continue;
            }
            for ru in 0..cfg.replication {
                for ri in 0..cfg.replication {
                    likes.set(ru * cfg.base_users + bu, ri * cfg.base_items + bi, true);
                }
            }
        }
    }
    let mut items = Vec::with_capacity(n_items);
    let mut feeds = Vec::with_capacity(n_items);
    for index in 0..n_items {
        let bi = index % cfg.base_items;
        let topic = base_topics[bi];
        let interested = likes.interested_users(index);
        debug_assert!(!interested.is_empty());
        let source = interested[rng.gen_range(0..interested.len())];
        items.push(ItemSpec {
            index: index as u32,
            topic,
            source,
        });
        // RSS feeds are much coarser than the latent interests: the survey
        // drew its items from a handful of feeds (culture, politics, people,
        // sports, …). Mapping topic ranks modulo n_feeds mixes mainstream
        // and niche topics within one feed, which is what keeps C-Pub/Sub's
        // precision near the paper's 0.40 (Table V).
        feeds.push(topic % cfg.n_feeds as u32);
    }

    let d = Dataset {
        name: "survey".into(),
        items,
        likes,
        social: None,
        n_topics: cfg.n_topics as u32,
        feeds: Some(feeds),
    };
    debug_assert!(d.validate().is_ok());
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SurveyConfig {
        SurveyConfig::paper().scaled(0.25)
    }

    #[test]
    fn paper_scale_matches_table_i() {
        let cfg = SurveyConfig::paper();
        assert_eq!(cfg.n_users(), 480);
        assert_eq!(cfg.n_items(), 1000);
    }

    #[test]
    fn like_rate_close_to_calibration_target() {
        let d = generate(&SurveyConfig::paper(), 11);
        let rate = d.likes.like_rate();
        assert!(
            (0.28..=0.42).contains(&rate),
            "survey like rate {rate} outside calibration band"
        );
    }

    #[test]
    fn popularity_has_low_mass_and_tail() {
        let d = generate(&SurveyConfig::paper(), 11);
        let pops: Vec<f64> = (0..d.n_items()).map(|i| d.likes.popularity(i)).collect();
        let low = pops.iter().filter(|&&p| p < 0.5).count() as f64 / pops.len() as f64;
        let tail = pops.iter().filter(|&&p| p > 0.8).count() as f64 / pops.len() as f64;
        assert!(low > 0.55, "most items must be niche: low={low}");
        assert!(tail > 0.005, "some viral items must exist: tail={tail}");
    }

    #[test]
    fn replication_clones_likes_exactly() {
        let cfg = small();
        let d = generate(&cfg, 11);
        for bu in 0..cfg.base_users {
            for bi in 0..cfg.base_items.min(30) {
                let reference = d.likes.likes(bu, bi);
                for r in 1..cfg.replication {
                    assert_eq!(
                        d.likes.likes(r * cfg.base_users + bu, bi),
                        reference,
                        "user clone differs"
                    );
                    assert_eq!(
                        d.likes.likes(bu, r * cfg.base_items + bi),
                        reference,
                        "item clone differs"
                    );
                }
            }
        }
    }

    #[test]
    fn valid_and_deterministic() {
        let a = generate(&small(), 1);
        assert!(a.validate().is_ok());
        let b = generate(&small(), 1);
        assert_eq!(a.likes, b.likes);
        assert_eq!(a.items, b.items);
    }

    #[test]
    fn every_item_has_a_liker() {
        let d = generate(&small(), 13);
        for i in 0..d.n_items() {
            assert!(d.likes.interested_count(i) >= 1);
        }
    }
}
