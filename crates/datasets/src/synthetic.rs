//! The synthetic Arxiv-community workload (paper §IV-A).
//!
//! The paper ran Newman community detection over the Arxiv collaboration
//! graph to obtain 21 *clearly defined, disjoint* communities (31–1036
//! users, 3180 kept users) and published 120 items per community (~2000
//! total), with sources drawn from each community. We generate the
//! communities directly: each user belongs to exactly one community, each
//! item to one community's topic, and users like items of their own
//! community with high probability and foreign items with a small noise
//! probability. The resulting like matrix has the block-diagonal structure
//! the paper relies on to show WhatsUp's behavior on a clean topology
//! (Fig. 3a/3d).

use crate::matrix::LikeMatrix;
use crate::spec::{Dataset, ItemSpec};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use whatsup_graph::generate::community_sizes;

/// Generator knobs for the synthetic workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticConfig {
    pub n_users: usize,
    pub n_communities: usize,
    pub min_community: usize,
    pub max_community: usize,
    pub n_items: usize,
    /// P(like | item of own community).
    pub in_community_like: f64,
    /// P(like | item of another community) — the noise floor.
    pub cross_community_like: f64,
}

impl SyntheticConfig {
    /// Paper-scale configuration (Table I: 3180 users, 2000 items; §IV-A:
    /// 21 communities of 31–1036).
    pub fn paper() -> Self {
        Self {
            n_users: 3180,
            n_communities: 21,
            min_community: 31,
            max_community: 1036,
            n_items: 2000,
            in_community_like: 0.90,
            cross_community_like: 0.02,
        }
    }

    /// Shrinks users/items by `scale` (communities shrink with sqrt so small
    /// scales keep several communities alive).
    pub fn scaled(mut self, scale: f64) -> Self {
        let scale = scale.clamp(0.01, 1.0);
        self.n_users = ((self.n_users as f64 * scale) as usize).max(20);
        self.n_items = ((self.n_items as f64 * scale) as usize).max(20);
        self.n_communities =
            ((self.n_communities as f64 * scale.sqrt()) as usize).clamp(2, self.n_communities);
        self.min_community = self
            .min_community
            .min(self.n_users / self.n_communities / 2)
            .max(2);
        self.max_community = (self.n_users / 2).max(self.min_community + 1);
        self
    }
}

/// Generates the synthetic workload deterministically from `seed`.
pub fn generate(cfg: &SyntheticConfig, seed: u64) -> Dataset {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let sizes = community_sizes(
        cfg.n_communities,
        cfg.min_community,
        cfg.max_community,
        cfg.n_users,
        &mut rng,
    );
    // community[u] for every user, laid out contiguously.
    let mut community: Vec<u32> = Vec::with_capacity(cfg.n_users);
    for (c, &size) in sizes.iter().enumerate() {
        community.extend(std::iter::repeat_n(c as u32, size));
    }
    // Items round-robin over communities so every community publishes
    // (the paper publishes 120 per community).
    let mut likes = LikeMatrix::new(cfg.n_users, cfg.n_items);
    let mut items = Vec::with_capacity(cfg.n_items);
    for index in 0..cfg.n_items {
        let topic = (index % cfg.n_communities) as u32;
        for (u, &cu) in community.iter().enumerate() {
            let p = if cu == topic {
                cfg.in_community_like
            } else {
                cfg.cross_community_like
            };
            if rng.gen_bool(p) {
                likes.set(u, index, true);
            }
        }
        // Source: a community member; force-like so the source can publish.
        let members: Vec<u32> = community
            .iter()
            .enumerate()
            .filter(|(_, &c)| c == topic)
            .map(|(u, _)| u as u32)
            .collect();
        let source = members[rng.gen_range(0..members.len())];
        likes.set(source as usize, index, true);
        items.push(ItemSpec {
            index: index as u32,
            topic,
            source,
        });
    }
    let d = Dataset {
        name: "synthetic".into(),
        items,
        likes,
        social: None,
        n_topics: cfg.n_communities as u32,
        feeds: None,
    };
    debug_assert!(d.validate().is_ok());
    d
}

/// The community of each user under the given config/seed (test/analysis
/// helper; communities are contiguous index ranges).
pub fn user_communities(cfg: &SyntheticConfig, seed: u64) -> Vec<u32> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let sizes = community_sizes(
        cfg.n_communities,
        cfg.min_community,
        cfg.max_community,
        cfg.n_users,
        &mut rng,
    );
    let mut community = Vec::with_capacity(cfg.n_users);
    for (c, &size) in sizes.iter().enumerate() {
        community.extend(std::iter::repeat_n(c as u32, size));
    }
    community
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SyntheticConfig {
        SyntheticConfig::paper().scaled(0.05)
    }

    #[test]
    fn paper_scale_matches_table_i() {
        let cfg = SyntheticConfig::paper();
        assert_eq!(cfg.n_users, 3180);
        assert_eq!(cfg.n_items, 2000);
        assert_eq!(cfg.n_communities, 21);
    }

    #[test]
    fn generated_dataset_is_valid() {
        let d = generate(&small(), 3);
        assert!(d.validate().is_ok());
        assert_eq!(d.n_users(), small().n_users);
        assert_eq!(d.n_items(), small().n_items);
    }

    #[test]
    fn block_structure_dominates() {
        let cfg = small();
        let d = generate(&cfg, 3);
        let communities = user_communities(&cfg, 3);
        let mut in_c = 0u64;
        let mut in_c_likes = 0u64;
        let mut out_c = 0u64;
        let mut out_c_likes = 0u64;
        for item in &d.items {
            for (u, &community) in communities.iter().enumerate() {
                if community == item.topic {
                    in_c += 1;
                    in_c_likes += d.likes.likes(u, item.index as usize) as u64;
                } else {
                    out_c += 1;
                    out_c_likes += d.likes.likes(u, item.index as usize) as u64;
                }
            }
        }
        let p_in = in_c_likes as f64 / in_c as f64;
        let p_out = out_c_likes as f64 / out_c as f64;
        assert!(p_in > 0.8, "in-community like rate too low: {p_in}");
        assert!(p_out < 0.1, "cross-community noise too high: {p_out}");
    }

    #[test]
    fn deterministic() {
        let a = generate(&small(), 9);
        let b = generate(&small(), 9);
        assert_eq!(a.likes, b.likes);
        assert_eq!(a.items, b.items);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&small(), 1);
        let b = generate(&small(), 2);
        assert_ne!(a.likes, b.likes);
    }

    #[test]
    fn every_community_publishes() {
        let d = generate(&small(), 3);
        let mut topics: Vec<u32> = d.items.iter().map(|i| i.topic).collect();
        topics.sort_unstable();
        topics.dedup();
        assert_eq!(topics.len(), small().n_communities);
    }
}
