//! The [`Dataset`] container shared by all generators, plus Table I stats.

use crate::matrix::LikeMatrix;
use serde::{Deserialize, Serialize};
use whatsup_graph::Graph;

/// Static description of one news item in a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ItemSpec {
    /// Dense index of the item within the dataset.
    pub index: u32,
    /// Topic/category of the item (pub/sub subscriptions, Digg categories,
    /// synthetic community id).
    pub topic: u32,
    /// The user that publishes the item. Sources always like their own items
    /// (Algorithm 1, line 14 rates the generated item *like*).
    pub source: u32,
}

/// A complete workload: ground-truth likes, item specs and (optionally) an
/// explicit social graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    pub name: String,
    pub items: Vec<ItemSpec>,
    pub likes: LikeMatrix,
    /// Explicit follower graph (only the Digg workload has one; cascade is
    /// evaluated there, §IV-B). Edges point from a user to her *followers*:
    /// `neighbors(u)` are the users that see what `u` likes.
    pub social: Option<Graph>,
    /// Number of distinct topics.
    pub n_topics: u32,
    /// Coarse per-item "RSS feed" labels for the explicit pub/sub baseline
    /// (§IV-B extracts topics "from keywords associated with the RSS
    /// feeds" — much coarser than the latent interest structure). `None`
    /// makes pub/sub fall back to the latent topics.
    pub feeds: Option<Vec<u32>>,
}

impl Dataset {
    pub fn n_users(&self) -> usize {
        self.likes.n_users()
    }

    pub fn n_items(&self) -> usize {
        self.items.len()
    }

    /// Users interested in item `index` (ground truth).
    pub fn interested_users(&self, index: usize) -> Vec<u32> {
        self.likes.interested_users(index)
    }

    /// Validates generator invariants: matrix shape matches the item list,
    /// every source likes its own item, topics within range.
    pub fn validate(&self) -> Result<(), String> {
        if self.likes.n_items() != self.items.len() {
            return Err("matrix/items shape mismatch".into());
        }
        for it in &self.items {
            if it.source as usize >= self.n_users() {
                return Err(format!("item {} source out of range", it.index));
            }
            if !self.likes.likes(it.source as usize, it.index as usize) {
                return Err(format!(
                    "source {} does not like item {}",
                    it.source, it.index
                ));
            }
            if it.topic >= self.n_topics {
                return Err(format!("item {} topic out of range", it.index));
            }
        }
        if let Some(g) = &self.social {
            if g.len() != self.n_users() {
                return Err("social graph size mismatch".into());
            }
        }
        if let Some(feeds) = &self.feeds {
            if feeds.len() != self.items.len() {
                return Err("feeds/items shape mismatch".into());
            }
        }
        Ok(())
    }

    /// The pub/sub topic of an item: its coarse feed label when available,
    /// the latent topic otherwise.
    pub fn pubsub_topic(&self, index: usize) -> u32 {
        match &self.feeds {
            Some(feeds) => feeds[index],
            None => self.items[index].topic,
        }
    }

    /// Number of distinct pub/sub topics.
    pub fn n_pubsub_topics(&self) -> u32 {
        match &self.feeds {
            Some(feeds) => feeds.iter().copied().max().map_or(1, |m| m + 1),
            None => self.n_topics,
        }
    }

    /// Table I row plus the first-order statistics the substitution argument
    /// rests on (DESIGN.md §3).
    pub fn stats(&self) -> DatasetStats {
        let n_items = self.n_items();
        let mut pops: Vec<f64> = (0..n_items).map(|i| self.likes.popularity(i)).collect();
        pops.sort_by(|a, b| a.partial_cmp(b).expect("popularity is never NaN"));
        let median_popularity = if pops.is_empty() {
            0.0
        } else {
            pops[pops.len() / 2]
        };
        DatasetStats {
            name: self.name.clone(),
            n_users: self.n_users(),
            n_items,
            n_topics: self.n_topics as usize,
            like_rate: self.likes.like_rate(),
            median_popularity,
            has_social_graph: self.social.is_some(),
        }
    }
}

/// Summary row for the Table I harness.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    pub name: String,
    pub n_users: usize,
    pub n_items: usize,
    pub n_topics: usize,
    pub like_rate: f64,
    pub median_popularity: f64,
    pub has_social_graph: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        let mut likes = LikeMatrix::new(3, 2);
        likes.set(0, 0, true);
        likes.set(1, 0, true);
        likes.set(2, 1, true);
        Dataset {
            name: "tiny".into(),
            items: vec![
                ItemSpec {
                    index: 0,
                    topic: 0,
                    source: 0,
                },
                ItemSpec {
                    index: 1,
                    topic: 1,
                    source: 2,
                },
            ],
            likes,
            social: None,
            n_topics: 2,
            feeds: None,
        }
    }

    #[test]
    fn valid_dataset_passes() {
        assert!(tiny().validate().is_ok());
    }

    #[test]
    fn source_must_like_item() {
        let mut d = tiny();
        d.items[0].source = 2; // user 2 dislikes item 0
        assert!(d.validate().is_err());
    }

    #[test]
    fn topic_range_checked() {
        let mut d = tiny();
        d.items[1].topic = 9;
        assert!(d.validate().is_err());
    }

    #[test]
    fn stats_reports_shape() {
        let s = tiny().stats();
        assert_eq!(s.n_users, 3);
        assert_eq!(s.n_items, 2);
        assert!((s.like_rate - 0.5).abs() < 1e-12);
        assert!(!s.has_social_graph);
    }

    #[test]
    fn interested_users_come_from_matrix() {
        assert_eq!(tiny().interested_users(0), vec![0, 1]);
    }

    #[test]
    fn pubsub_topics_prefer_feeds() {
        let mut d = tiny();
        assert_eq!(d.pubsub_topic(1), 1);
        assert_eq!(d.n_pubsub_topics(), 2);
        d.feeds = Some(vec![0, 0]);
        assert_eq!(d.pubsub_topic(1), 0);
        assert_eq!(d.n_pubsub_topics(), 1);
        assert!(d.validate().is_ok());
        d.feeds = Some(vec![0]);
        assert!(d.validate().is_err(), "feed arity checked");
    }
}
