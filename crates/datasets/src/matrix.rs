//! The like matrix: ground-truth `(user, item) → like?` relation.
//!
//! Stored as a row-major bitset (one row per user). At paper scale the
//! largest matrix is 3180 × 2000 bits ≈ 800 kB — small enough to clone per
//! experiment, large enough that a `Vec<Vec<bool>>` would hurt.

use serde::{Deserialize, Serialize};

/// A dense boolean matrix over `users × items`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LikeMatrix {
    n_users: usize,
    n_items: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl LikeMatrix {
    /// All-dislike matrix of the given shape.
    pub fn new(n_users: usize, n_items: usize) -> Self {
        let words_per_row = n_items.div_ceil(64);
        Self {
            n_users,
            n_items,
            words_per_row,
            bits: vec![0; n_users * words_per_row],
        }
    }

    pub fn n_users(&self) -> usize {
        self.n_users
    }

    pub fn n_items(&self) -> usize {
        self.n_items
    }

    #[inline]
    fn index(&self, user: usize, item: usize) -> (usize, u64) {
        debug_assert!(
            user < self.n_users && item < self.n_items,
            "index out of range"
        );
        (user * self.words_per_row + item / 64, 1u64 << (item % 64))
    }

    /// Whether `user` likes `item`.
    #[inline]
    pub fn likes(&self, user: usize, item: usize) -> bool {
        let (w, mask) = self.index(user, item);
        self.bits[w] & mask != 0
    }

    /// Sets the like bit.
    pub fn set(&mut self, user: usize, item: usize, liked: bool) {
        let (w, mask) = self.index(user, item);
        if liked {
            self.bits[w] |= mask;
        } else {
            self.bits[w] &= !mask;
        }
    }

    /// The raw row-major bit words (serialization support; pair with
    /// [`LikeMatrix::from_words`]).
    pub fn words(&self) -> &[u64] {
        &self.bits
    }

    /// Rebuilds a matrix from its shape and raw words.
    ///
    /// # Panics
    /// Panics if `words` does not match the shape.
    pub fn from_words(n_users: usize, n_items: usize, words: Vec<u64>) -> Self {
        let words_per_row = n_items.div_ceil(64);
        assert_eq!(
            words.len(),
            n_users * words_per_row,
            "word count does not match matrix shape"
        );
        Self {
            n_users,
            n_items,
            words_per_row,
            bits: words,
        }
    }

    /// Users that like `item`.
    pub fn interested_users(&self, item: usize) -> Vec<u32> {
        (0..self.n_users)
            .filter(|&u| self.likes(u, item))
            .map(|u| u as u32)
            .collect()
    }

    /// Number of users that like `item`.
    pub fn interested_count(&self, item: usize) -> usize {
        (0..self.n_users).filter(|&u| self.likes(u, item)).count()
    }

    /// Popularity of `item`: fraction of users that like it (Fig. 10 x-axis).
    pub fn popularity(&self, item: usize) -> f64 {
        if self.n_users == 0 {
            return 0.0;
        }
        self.interested_count(item) as f64 / self.n_users as f64
    }

    /// Number of items `user` likes.
    pub fn user_like_count(&self, user: usize) -> usize {
        let row = &self.bits[user * self.words_per_row..(user + 1) * self.words_per_row];
        row.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Overall like rate of the matrix (homogeneous-gossip precision floor).
    pub fn like_rate(&self) -> f64 {
        let total: usize = self.bits.iter().map(|w| w.count_ones() as usize).sum();
        let cells = self.n_users * self.n_items;
        if cells == 0 {
            0.0
        } else {
            total as f64 / cells as f64
        }
    }

    /// Number of common likes between two users (cosine numerator over
    /// ground-truth binary vectors).
    pub fn common_likes(&self, a: usize, b: usize) -> usize {
        let ra = &self.bits[a * self.words_per_row..(a + 1) * self.words_per_row];
        let rb = &self.bits[b * self.words_per_row..(b + 1) * self.words_per_row];
        ra.iter()
            .zip(rb)
            .map(|(x, y)| (x & y).count_ones() as usize)
            .sum()
    }

    /// Ground-truth cosine similarity between two users' like vectors.
    pub fn user_cosine(&self, a: usize, b: usize) -> f64 {
        let common = self.common_likes(a, b) as f64;
        let (la, lb) = (
            self.user_like_count(a) as f64,
            self.user_like_count(b) as f64,
        );
        if la == 0.0 || lb == 0.0 {
            0.0
        } else {
            common / (la.sqrt() * lb.sqrt())
        }
    }

    /// Sociability of a user (§V-H): mean ground-truth similarity to the `k`
    /// most similar other users.
    pub fn sociability(&self, user: usize, k: usize) -> f64 {
        let mut sims: Vec<f64> = (0..self.n_users)
            .filter(|&v| v != user)
            .map(|v| self.user_cosine(user, v))
            .collect();
        sims.sort_by(|a, b| b.partial_cmp(a).expect("similarity is never NaN"));
        sims.truncate(k);
        if sims.is_empty() {
            0.0
        } else {
            sims.iter().sum::<f64>() / sims.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn set_and_get_roundtrip() {
        let mut m = LikeMatrix::new(3, 130); // spans three words per row
        m.set(0, 0, true);
        m.set(1, 64, true);
        m.set(2, 129, true);
        assert!(m.likes(0, 0));
        assert!(m.likes(1, 64));
        assert!(m.likes(2, 129));
        assert!(!m.likes(0, 1));
        m.set(0, 0, false);
        assert!(!m.likes(0, 0));
    }

    #[test]
    fn popularity_and_counts() {
        let mut m = LikeMatrix::new(4, 2);
        m.set(0, 0, true);
        m.set(1, 0, true);
        m.set(2, 1, true);
        assert_eq!(m.interested_count(0), 2);
        assert_eq!(m.interested_users(0), vec![0, 1]);
        assert!((m.popularity(0) - 0.5).abs() < 1e-12);
        assert!((m.like_rate() - 3.0 / 8.0).abs() < 1e-12);
        assert_eq!(m.user_like_count(0), 1);
    }

    #[test]
    fn cosine_ground_truth() {
        let mut m = LikeMatrix::new(2, 4);
        for i in 0..2 {
            m.set(0, i, true);
        }
        for i in 1..3 {
            m.set(1, i, true);
        }
        // common = 1, norms = √2 each → 0.5
        assert!((m.user_cosine(0, 1) - 0.5).abs() < 1e-12);
        assert_eq!(m.common_likes(0, 1), 1);
    }

    #[test]
    fn cosine_handles_empty_rows() {
        let m = LikeMatrix::new(2, 4);
        assert_eq!(m.user_cosine(0, 1), 0.0);
    }

    #[test]
    fn sociability_averages_top_k() {
        let mut m = LikeMatrix::new(3, 2);
        m.set(0, 0, true);
        m.set(1, 0, true); // identical to user 0
        m.set(2, 1, true); // disjoint
        assert!((m.sociability(0, 1) - 1.0).abs() < 1e-12);
        assert!((m.sociability(0, 2) - 0.5).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn like_rate_matches_manual_count(
            ops in prop::collection::vec((0usize..5, 0usize..70, prop::bool::ANY), 0..100)
        ) {
            let mut m = LikeMatrix::new(5, 70);
            let mut reference = std::collections::HashSet::new();
            for (u, i, liked) in ops {
                m.set(u, i, liked);
                if liked {
                    reference.insert((u, i));
                } else {
                    reference.remove(&(u, i));
                }
            }
            let expected = reference.len() as f64 / (5.0 * 70.0);
            prop_assert!((m.like_rate() - expected).abs() < 1e-12);
        }

        #[test]
        fn cosine_is_symmetric_and_bounded(
            likes_a in prop::collection::btree_set(0usize..40, 0..20),
            likes_b in prop::collection::btree_set(0usize..40, 0..20),
        ) {
            let mut m = LikeMatrix::new(2, 40);
            for &i in &likes_a { m.set(0, i, true); }
            for &i in &likes_b { m.set(1, i, true); }
            let ab = m.user_cosine(0, 1);
            let ba = m.user_cosine(1, 0);
            prop_assert!((ab - ba).abs() < 1e-12);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&ab));
        }
    }
}
