//! Workload synthesis for the WhatsUp reproduction (paper §IV-A).
//!
//! The paper evaluates on three traces we cannot redistribute or re-crawl:
//!
//! 1. a **synthetic** trace derived from the Arxiv collaboration graph — 21
//!    disjoint interest communities of 31–1036 users (3180 total), ~2000
//!    items, 120 per community;
//! 2. a **Digg** crawl — 750 users, 2500 items in 40 categories, plus the
//!    explicit follower graph used by the cascade baseline;
//! 3. a **user survey** — 120 colleagues rating 200 RSS items, replicated ×4
//!    (Table I lists 480 users / 1000 items).
//!
//! Every experiment consumes nothing but the *like matrix* (who would like
//! what), the item→category map, the item sources, and (for Digg) the social
//! graph. The generators here synthesize those objects with the same
//! first-order statistics (community structure, mean like rate, popularity
//! skew, hub-dominated follower graph), which is what preserves the paper's
//! qualitative results; see DESIGN.md §3 for the substitution argument.
//!
//! All generators are deterministic given a seed.

pub mod digg;
pub mod matrix;
pub mod spec;
pub mod store;
pub mod survey;
pub mod synthetic;

pub use digg::DiggConfig;
pub use matrix::LikeMatrix;
pub use spec::{Dataset, DatasetStats, ItemSpec};
pub use store::{CsrLikes, LikeStore};
pub use survey::SurveyConfig;
pub use synthetic::SyntheticConfig;

/// The three paper workloads at a given scale factor (1.0 = paper scale).
/// Scale shrinks users and items proportionally — experiment harnesses use
/// reduced scale by default and 1.0 under `WHATSUP_FULL=1`.
pub fn paper_workloads(scale: f64, seed: u64) -> Vec<Dataset> {
    vec![
        synthetic::generate(&SyntheticConfig::paper().scaled(scale), seed),
        digg::generate(&DiggConfig::paper().scaled(scale), seed ^ 0x5eed_0001),
        survey::generate(&SurveyConfig::paper().scaled(scale), seed ^ 0x5eed_0002),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_workloads_have_expected_names() {
        let sets = paper_workloads(0.1, 7);
        let names: Vec<&str> = sets.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, vec!["synthetic", "digg", "survey"]);
    }

    #[test]
    fn scaling_shrinks_users() {
        let small = paper_workloads(0.1, 7);
        let smaller = paper_workloads(0.05, 7);
        for (a, b) in small.iter().zip(&smaller) {
            assert!(b.n_users() <= a.n_users());
        }
    }
}
