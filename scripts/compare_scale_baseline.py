#!/usr/bin/env python3
"""Compare a fresh scale_engine run against the committed BENCH_scale.json.

Usage: compare_scale_baseline.py <baseline.json> <fresh.json>

Both files hold the rows scale_engine saves: [nodes, shards, workload,
metrics, cycles_per_sec, messages, peak_rss_mb] (the committed baseline may
predate the peak-RSS column; short rows are padded). Rows are keyed by
(nodes, shards, workload, metrics).

For every fresh row with a committed counterpart the script prints the
cycles/sec delta — wall-clock, informational. It FAILS (exit 1) when the
`messages` column diverges: the message count is a pure function of the
simulation (same seed, same protocol), so a mismatch is a determinism or
behavior break, never noise. A fresh row missing from the baseline also
fails, so the committed trajectory stays in lockstep with the bench grid.
"""

import json
import sys


def load_rows(path):
    with open(path) as f:
        rows = json.load(f)
    keyed = {}
    for row in rows:
        row = list(row) + [0.0] * (7 - len(row))
        key = tuple(int(v) for v in row[:4])
        keyed[key] = {"cps": float(row[4]), "messages": int(row[5]), "rss": float(row[6])}
    return keyed


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    baseline = load_rows(sys.argv[1])
    fresh = load_rows(sys.argv[2])
    failures = []
    print(f"{'nodes':>8} {'shards':>6} {'wload':>5} {'metrics':>7} "
          f"{'base cyc/s':>11} {'new cyc/s':>10} {'delta':>8}  messages")
    for key in sorted(fresh):
        nodes, shards, wload, metrics = key
        new = fresh[key]
        base = baseline.get(key)
        if base is None:
            failures.append(f"row {key} missing from the committed baseline")
            continue
        delta = (new["cps"] - base["cps"]) / base["cps"] * 100.0 if base["cps"] else 0.0
        verdict = "ok"
        if new["messages"] != base["messages"]:
            verdict = f"DIVERGED ({base['messages']} -> {new['messages']})"
            failures.append(
                f"row {key}: messages diverged from the baseline "
                f"({base['messages']} -> {new['messages']}) — determinism break"
            )
        print(f"{nodes:>8} {shards:>6} {wload:>5} {metrics:>7} "
              f"{base['cps']:>11.2f} {new['cps']:>10.2f} {delta:>+7.1f}%  {verdict}")
    if failures:
        print("\n" + "\n".join(failures), file=sys.stderr)
        sys.exit(1)
    print("\nall rows match the committed baseline (cycles/sec deltas are informational)")


if __name__ == "__main__":
    main()
