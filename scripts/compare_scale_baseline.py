#!/usr/bin/env python3
"""Compare a fresh scale_engine run against the committed BENCH_scale.json.

Usage: compare_scale_baseline.py <baseline.json> <fresh.json>

Both files hold the rows scale_engine saves: objects with named columns
{nodes, shards, workload ("uniform"/"flash"), metrics ("on"/"off"), secs,
messages, peak_rss_mb}. Rows are keyed by (nodes, shards, workload,
metrics).

For every fresh row with a committed counterpart the script prints the
wall-clock (secs) delta — informational. It FAILS (exit 1) when:

* the `messages` column diverges: the message count is a pure function of
  the simulation (same seed, same protocol), so a mismatch is a
  determinism or behavior break, never noise;
* `peak_rss_mb` regresses more than RSS_TOLERANCE (15%) over the
  committed row: peak memory is reset per row by the bench, so a jump
  that size is a real memory regression, not allocator noise;
* a fresh row is missing from the baseline, so the committed trajectory
  stays in lockstep with the bench grid.

RSS improvements (fresh below baseline) never fail — they are the point.
"""

import json
import sys

RSS_TOLERANCE = 0.15


def load_rows(path):
    with open(path) as f:
        rows = json.load(f)
    keyed = {}
    for row in rows:
        key = (int(row["nodes"]), int(row["shards"]),
               str(row["workload"]), str(row["metrics"]))
        keyed[key] = {
            "secs": float(row["secs"]),
            "messages": int(row["messages"]),
            "rss": float(row.get("peak_rss_mb", 0.0)),
        }
    return keyed


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    baseline = load_rows(sys.argv[1])
    fresh = load_rows(sys.argv[2])
    failures = []
    print(f"{'nodes':>8} {'shards':>6} {'wload':>8} {'metrics':>7} "
          f"{'base secs':>10} {'new secs':>9} {'delta':>8} {'rss delta':>9}  messages")
    for key in sorted(fresh):
        nodes, shards, wload, metrics = key
        new = fresh[key]
        base = baseline.get(key)
        if base is None:
            failures.append(f"row {key} missing from the committed baseline")
            continue
        delta = (new["secs"] - base["secs"]) / base["secs"] * 100.0 if base["secs"] else 0.0
        rss_delta = (new["rss"] - base["rss"]) / base["rss"] if base["rss"] else 0.0
        verdict = "ok"
        if new["messages"] != base["messages"]:
            verdict = f"DIVERGED ({base['messages']} -> {new['messages']})"
            failures.append(
                f"row {key}: messages diverged from the baseline "
                f"({base['messages']} -> {new['messages']}) — determinism break"
            )
        if base["rss"] and rss_delta > RSS_TOLERANCE:
            verdict = f"RSS REGRESSED ({base['rss']:.1f} -> {new['rss']:.1f} MiB)"
            failures.append(
                f"row {key}: peak RSS regressed "
                f"{rss_delta * 100.0:+.1f}% over the baseline "
                f"({base['rss']:.1f} -> {new['rss']:.1f} MiB, "
                f"tolerance {RSS_TOLERANCE * 100.0:.0f}%)"
            )
        print(f"{nodes:>8} {shards:>6} {wload:>8} {metrics:>7} "
              f"{base['secs']:>10.3f} {new['secs']:>9.3f} {delta:>+7.1f}% "
              f"{rss_delta * 100.0:>+8.1f}%  {verdict}")
    if failures:
        print("\n" + "\n".join(failures), file=sys.stderr)
        sys.exit(1)
    print("\nall rows match the committed baseline "
          "(secs deltas informational; rss gated at "
          f"{RSS_TOLERANCE * 100.0:.0f}%)")


if __name__ == "__main__":
    main()
