//! Cross-crate integration tests: the paper's qualitative claims at reduced
//! scale. These are the headline relationships every figure/table rests on;
//! the full-scale numbers live in the bench harnesses and EXPERIMENTS.md.

use whatsup::prelude::*;
use whatsup::sim::sweep::{f1_vs_fanout, grid_sweep};

fn survey(scale: f64, seed: u64) -> Dataset {
    whatsup::datasets::survey::generate(&SurveyConfig::paper().scaled(scale), seed)
}

fn cfg() -> SimConfig {
    SimConfig {
        cycles: 40,
        publish_from: 3,
        measure_from: 14,
        ..Default::default()
    }
}

#[test]
fn wup_metric_beats_cosine_on_f1() {
    let d = survey(0.25, 11);
    let wup = run_protocol(&d, Protocol::WhatsUp { f_like: 8 }, &cfg());
    let cos = run_protocol(&d, Protocol::WhatsUpCos { f_like: 8 }, &cfg());
    assert!(
        wup.scores().f1 >= cos.scores().f1 - 0.02,
        "§V-A: the WUP metric should not lose to cosine: {:?} vs {:?}",
        wup.scores(),
        cos.scores()
    );
    // And it does so primarily through recall (paper: +15% on the survey).
    assert!(
        wup.scores().recall > cos.scores().recall,
        "recall advantage missing: {:?} vs {:?}",
        wup.scores(),
        cos.scores()
    );
}

#[test]
fn beep_beats_cf_at_low_fanout_and_cost() {
    // §V-B / Fig 3: WhatsUp reaches higher F1 "with lower fanouts and
    // message costs". The gap is widest at small fanouts, where CF's
    // k-nearest topology is still fragmented but BEEP's dislike path
    // already routes items across it.
    let d = survey(0.25, 12);
    let wu = run_protocol(&d, Protocol::WhatsUp { f_like: 5 }, &cfg());
    let cf = run_protocol(&d, Protocol::CfWup { k: 5 }, &cfg());
    assert!(
        wu.scores().f1 > cf.scores().f1,
        "§V-B: amplification+orientation must beat plain CF at small fanout: {:?} vs {:?}",
        wu.scores(),
        cf.scores()
    );
    // Table III compares each approach at its best config: WhatsUp at
    // fLIKE=10 matches CF-Wup at k=19 in F1 with far fewer messages
    // ("less than two thirds the message cost").
    let wu10 = run_protocol(&d, Protocol::WhatsUp { f_like: 10 }, &cfg());
    let cf19 = run_protocol(&d, Protocol::CfWup { k: 19 }, &cfg());
    assert!(
        wu10.scores().f1 + 0.05 >= cf19.scores().f1,
        "best-config F1 must be comparable: {:?} vs {:?}",
        wu10.scores(),
        cf19.scores()
    );
    assert!(
        wu10.messages_per_user() < 0.8 * cf19.messages_per_user(),
        "WhatsUp must be much cheaper at its best config: {:.0} vs {:.0} msgs/user",
        wu10.messages_per_user(),
        cf19.messages_per_user()
    );
}

#[test]
fn gossip_has_best_recall_worst_precision() {
    let d = survey(0.25, 13);
    let go = run_protocol(&d, Protocol::Gossip { fanout: 6 }, &cfg());
    let wu = run_protocol(&d, Protocol::WhatsUp { f_like: 6 }, &cfg());
    assert!(go.scores().recall >= wu.scores().recall - 0.02);
    assert!(go.scores().precision < wu.scores().precision);
    // Flooding precision sits at the mean like rate of the workload.
    let like_rate = d.likes.like_rate();
    assert!(
        (go.scores().precision - like_rate).abs() < 0.1,
        "gossip precision {:.3} should approach the like rate {:.3}",
        go.scores().precision,
        like_rate
    );
}

#[test]
fn whatsup_needs_fewer_messages_than_gossip() {
    let d = survey(0.25, 14);
    let go = run_protocol(&d, Protocol::Gossip { fanout: 10 }, &cfg());
    let wu = run_protocol(&d, Protocol::WhatsUp { f_like: 10 }, &cfg());
    assert!(
        wu.messages_per_user() < go.messages_per_user(),
        "Table III: WhatsUp must be cheaper: {} vs {}",
        wu.messages_per_user(),
        go.messages_per_user()
    );
}

#[test]
fn f1_grows_with_fanout_then_plateaus() {
    let d = survey(0.2, 15);
    let reports = grid_sweep(&d, &[Protocol::WhatsUp { f_like: 0 }], &[2, 6, 12], &cfg());
    let set = f1_vs_fanout(&reports, "sweep");
    let s = &set.series[0];
    assert!(
        s.points[1].1 > s.points[0].1,
        "F1 should rise from starved fanouts: {:?}",
        s.points
    );
    let gain_low = s.points[1].1 - s.points[0].1;
    let gain_high = s.points[2].1 - s.points[1].1;
    assert!(
        gain_high < gain_low + 0.05,
        "diminishing returns expected at high fanout: {:?}",
        s.points
    );
}

#[test]
fn cascade_on_digg_trades_recall_for_nothing() {
    let d = whatsup::datasets::digg::generate(&DiggConfig::paper().scaled(0.2), 16);
    let cascade = run_protocol(&d, Protocol::Cascade, &cfg());
    let wu = run_protocol(&d, Protocol::WhatsUp { f_like: 10 }, &cfg());
    // Table V: comparable precision, much lower recall for cascade.
    assert!(
        cascade.scores().recall < wu.scores().recall / 1.5,
        "cascade recall should collapse: {:?} vs {:?}",
        cascade.scores(),
        wu.scores()
    );
    assert!(wu.scores().f1 > cascade.scores().f1);
}

#[test]
fn pubsub_has_full_recall_but_lower_precision_than_whatsup() {
    let d = survey(0.25, 17);
    let ps = run_protocol(&d, Protocol::CPubSub, &cfg());
    let wu = run_protocol(&d, Protocol::WhatsUp { f_like: 10 }, &cfg());
    assert!((ps.scores().recall - 1.0).abs() < 1e-9);
    assert!(
        wu.scores().precision > ps.scores().precision,
        "Table V: implicit filtering should beat topic granularity: {:?} vs {:?}",
        wu.scores(),
        ps.scores()
    );
}

#[test]
fn loss_tolerance_shape_of_table_vi() {
    let d = survey(0.2, 18);
    let f6_clean = run_protocol(&d, Protocol::WhatsUp { f_like: 6 }, &cfg());
    let lossy = SimConfig { loss: 0.2, ..cfg() };
    let f6_lossy = run_protocol(&d, Protocol::WhatsUp { f_like: 6 }, &lossy);
    let very_lossy = SimConfig { loss: 0.5, ..cfg() };
    let f3_very = run_protocol(&d, Protocol::WhatsUp { f_like: 3 }, &very_lossy);
    // 20% loss at fanout 6: negligible recall damage (paper: 0.82 → 0.80).
    assert!(
        f6_lossy.scores().recall > f6_clean.scores().recall - 0.15,
        "fanout-6 redundancy should absorb 20% loss: {:?} vs {:?}",
        f6_lossy.scores(),
        f6_clean.scores()
    );
    // 50% loss at fanout 3: collapse (paper: recall 0.07).
    assert!(
        f3_very.scores().recall < 0.45,
        "fanout-3 must collapse at 50% loss: {:?}",
        f3_very.scores()
    );
}

#[test]
fn synthetic_communities_reach_high_precision() {
    let d = whatsup::datasets::synthetic::generate(&SyntheticConfig::paper().scaled(0.1), 19);
    let wu = run_protocol(&d, Protocol::WhatsUp { f_like: 10 }, &cfg());
    // Disjoint communities are the easy case (Fig. 3a): precision far above
    // the global like rate.
    assert!(
        wu.scores().precision > 2.0 * d.likes.like_rate(),
        "precision {:.3} vs like rate {:.3}",
        wu.scores().precision,
        d.likes.like_rate()
    );
}
