//! Integration tests for the §VII extensions: profile obfuscation
//! (privacy/accuracy trade-off) and churn robustness.

use whatsup::prelude::*;

fn survey(scale: f64, seed: u64) -> Dataset {
    whatsup::datasets::survey::generate(&SurveyConfig::paper().scaled(scale), seed)
}

fn cfg() -> SimConfig {
    SimConfig {
        cycles: 40,
        publish_from: 3,
        measure_from: 14,
        ..Default::default()
    }
}

#[test]
fn obfuscation_trades_accuracy_gracefully() {
    let d = survey(0.2, 41);
    let clear = run_protocol(&d, Protocol::WhatsUp { f_like: 8 }, &cfg());
    let mild = run_protocol(
        &d,
        Protocol::WhatsUp { f_like: 8 },
        &SimConfig {
            obfuscation: Some(0.3),
            ..cfg()
        },
    );
    let heavy = run_protocol(
        &d,
        Protocol::WhatsUp { f_like: 8 },
        &SimConfig {
            obfuscation: Some(0.9),
            ..cfg()
        },
    );
    // §VII: "obfuscation provides a trade-off between the accuracy of
    // recommendation and the disclosure of personal data" — quality must
    // decline with noise, but mild noise must not destroy the system.
    assert!(
        mild.scores().f1 > 0.7 * clear.scores().f1,
        "mild obfuscation should cost little: clear {:?} mild {:?}",
        clear.scores(),
        mild.scores()
    );
    assert!(
        heavy.scores().f1 <= mild.scores().f1 + 0.05,
        "heavy obfuscation cannot beat mild: mild {:?} heavy {:?}",
        mild.scores(),
        heavy.scores()
    );
    // Even ε=0.9 keeps the epidemic alive (dissemination never deadlocks).
    assert!(heavy.scores().recall > 0.1, "{:?}", heavy.scores());
}

#[test]
fn shared_profiles_differ_from_true_under_obfuscation() {
    use rand::SeedableRng;
    use whatsup::core::prelude::*;
    let mut params = whatsup::core::Params::whatsup(2);
    params.obfuscation_epsilon = 1.0;
    let mut node = WhatsUpNode::new(3, params);
    node.seed_views([(1, Profile::new())], [(1, Profile::new())]);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
    let mut stats = NodeStats::default();
    // Rate many items, then inspect what the node gossips.
    let everyone_likes = |_: NodeId, _: ItemId| true;
    for i in 0..200u64 {
        let _ = node.on_message(
            1,
            Payload::News(NewsMessage {
                header: ItemHeader {
                    id: i,
                    created_at: 0,
                },
                profile: SharedProfile::new(Profile::new()),
                dislikes: 0,
                hops: 0,
            }),
            0,
            &everyone_likes,
            &mut stats,
            &mut rng,
        );
    }
    let out = node.on_cycle(1, &mut stats, &mut rng);
    let mut flips = 0usize;
    let mut total = 0usize;
    for m in &out {
        let descs = match &m.payload {
            Payload::RpsRequest(d) | Payload::WupRequest(d) => d,
            _ => continue,
        };
        for d in descs.iter().filter(|d| d.node == 3) {
            for e in d.payload.entries() {
                total += 1;
                // The node liked everything; a 0 score is a lie.
                if e.score < 0.5 {
                    flips += 1;
                }
            }
        }
    }
    assert!(
        total >= 100,
        "self-descriptor must be in the gossip payloads"
    );
    let rate = flips as f64 / total as f64;
    assert!(
        (rate - 0.5).abs() < 0.15,
        "ε=1 randomized response flips ≈ half the shared opinions, got {rate}"
    );
}

#[test]
fn moderate_churn_is_absorbed() {
    let d = survey(0.2, 43);
    let stable = run_protocol(&d, Protocol::WhatsUp { f_like: 8 }, &cfg());
    let churny = run_protocol(
        &d,
        Protocol::WhatsUp { f_like: 8 },
        &SimConfig {
            churn_per_cycle: 0.01,
            ..cfg()
        },
    );
    assert!(
        churny.scores().f1 > 0.75 * stable.scores().f1,
        "1%/cycle churn must be absorbed: stable {:?} churny {:?}",
        stable.scores(),
        churny.scores()
    );
}

#[test]
fn heavy_churn_degrades_but_never_panics() {
    let d = survey(0.12, 44);
    let heavy = run_protocol(
        &d,
        Protocol::WhatsUp { f_like: 6 },
        &SimConfig {
            churn_per_cycle: 0.25,
            ..cfg()
        },
    );
    let stable = run_protocol(&d, Protocol::WhatsUp { f_like: 6 }, &cfg());
    assert!(
        heavy.scores().recall < stable.scores().recall,
        "25%/cycle churn must hurt: stable {:?} heavy {:?}",
        stable.scores(),
        heavy.scores()
    );
}

#[test]
fn churn_and_loss_compose() {
    let d = survey(0.12, 45);
    let r = run_protocol(
        &d,
        Protocol::WhatsUp { f_like: 6 },
        &SimConfig {
            churn_per_cycle: 0.05,
            loss: 0.2,
            ..cfg()
        },
    );
    assert!(
        r.scores().recall > 0.0,
        "combined failure modes must not deadlock"
    );
    for item in &r.items {
        assert!(item.hits <= item.reached);
    }
}
