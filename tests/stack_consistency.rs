//! The three testbeds (simulator, emulator, UDP swarm) run the same
//! `whatsup-core` node; their delivery quality must agree (Fig. 8a's
//! methodological claim). Also exercises the experiment drivers' plumbing
//! end-to-end at tiny scale.

use whatsup::prelude::*;
use whatsup::sim::experiments;

#[test]
fn simulator_emulator_udp_agree_on_f1() {
    let dataset = whatsup::datasets::survey::generate(&SurveyConfig::paper().scaled(0.12), 8);
    // Simulator.
    let sim_cfg = SimConfig {
        cycles: 16,
        publish_from: 2,
        measure_from: 6,
        ..Default::default()
    };
    let sim = run_protocol(&dataset, Protocol::WhatsUp { f_like: 5 }, &sim_cfg);
    // Emulated fabric.
    let swarm = SwarmConfig {
        params: Params::whatsup(5),
        cycles: 16,
        cycle_ms: 80,
        publish_from: 2,
        measure_from: 6,
        drain_cycles: 2,
        ..Default::default()
    };
    let emu = whatsup::net::emulator::run(
        &dataset,
        &EmulatorConfig {
            swarm: swarm.clone(),
            latency_ms: (1, 5),
            link_loss: 0.0,
        },
    );
    // Real UDP sockets.
    let udp = whatsup::net::runtime::run(&dataset, &UdpConfig { swarm });

    let (s, e, u) = (sim.scores(), emu.scores(), udp.scores());
    assert!(s.f1 > 0.2, "simulator starved: {s:?}");
    assert!(e.f1 > 0.2, "emulator starved: {e:?}");
    assert!(u.f1 > 0.2, "udp starved: {u:?}");
    assert!(
        (s.f1 - e.f1).abs() < 0.2 && (s.f1 - u.f1).abs() < 0.2,
        "testbeds disagree: sim {s:?} emu {e:?} udp {u:?}"
    );
}

#[test]
fn experiment_json_artifacts_roundtrip() {
    experiments::save_json("integration-selftest", &vec![1.0f64, 2.0, 3.0]);
    let path = experiments::output_dir().join("integration-selftest.json");
    let text = std::fs::read_to_string(path).expect("artifact written");
    let back: Vec<f64> = serde_json::from_str(&text).expect("valid JSON");
    assert_eq!(back, vec![1.0, 2.0, 3.0]);
}

#[test]
fn table1_driver_end_to_end() {
    // table1 only generates datasets; safe at any scale.
    let t = experiments::tables::table1();
    assert_eq!(t.stats.len(), 3);
    let rendered = t.render();
    for name in ["synthetic", "digg", "survey"] {
        assert!(rendered.contains(name), "missing {name} in:\n{rendered}");
    }
}

#[test]
fn wire_codec_carries_simulated_dissemination() {
    // Encode/decode a full news payload produced by a live node.
    use rand::SeedableRng;
    use whatsup::core::prelude::*;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
    let mut node = WhatsUpNode::new(0, whatsup::core::Params::whatsup(2));
    node.seed_views(
        [(1, Profile::new())],
        [(1, Profile::new()), (2, Profile::new())],
    );
    let item = NewsItem::new("t", "d", "https://l", 0, 0);
    let mut stats = NodeStats::default();
    let out = node.publish(&item, 0, &mut stats, &mut rng);
    assert!(!out.is_empty());
    let resolver = |id: ItemId| (id == item.id()).then(|| item.clone());
    for m in &out {
        let bytes = whatsup::net::codec::encode(0, &m.payload, resolver).unwrap();
        let (from, wire) = whatsup::net::codec::decode(&bytes).unwrap();
        assert_eq!(from, 0);
        assert_eq!(wire.try_into_payload().unwrap(), m.payload);
    }
}
