//! Failure-injection integration tests: the paper's robustness story
//! (§V-E) plus degraded-mode behaviors the system must survive.

use whatsup::prelude::*;

fn survey(scale: f64, seed: u64) -> Dataset {
    whatsup::datasets::survey::generate(&SurveyConfig::paper().scaled(scale), seed)
}

fn cfg() -> SimConfig {
    SimConfig {
        cycles: 40,
        publish_from: 3,
        measure_from: 14,
        ..Default::default()
    }
}

#[test]
fn graceful_degradation_under_increasing_loss() {
    // Recall must degrade monotonically-ish (within noise) and never
    // cliff-drop before 20% at fanout 6 — Table VI's core claim.
    let d = survey(0.2, 31);
    let mut recalls = Vec::new();
    for loss in [0.0, 0.05, 0.2, 0.5] {
        let c = SimConfig { loss, ..cfg() };
        let r = run_protocol(&d, Protocol::WhatsUp { f_like: 6 }, &c);
        recalls.push((loss, r.scores().recall));
    }
    assert!(
        recalls[2].1 > 0.8 * recalls[0].1,
        "20% loss must be nearly free at fanout 6: {recalls:?}"
    );
    assert!(
        recalls[3].1 < recalls[0].1,
        "50% loss must cost something: {recalls:?}"
    );
}

#[test]
fn extreme_loss_starves_but_never_panics() {
    let d = survey(0.12, 32);
    let c = SimConfig {
        loss: 0.95,
        ..cfg()
    };
    let r = run_protocol(&d, Protocol::WhatsUp { f_like: 4 }, &c);
    let s = r.scores();
    assert!(
        s.recall < 0.4,
        "95% loss cannot sustain dissemination: {s:?}"
    );
}

#[test]
fn zero_fanout_views_still_terminate() {
    // Minimal fanout (1) with a tiny view: the epidemic barely moves but
    // the simulation must terminate and produce consistent records.
    let d = survey(0.12, 33);
    let r = run_protocol(&d, Protocol::WhatsUp { f_like: 1 }, &cfg());
    for item in &r.items {
        assert!(item.hits <= item.reached);
        assert!((item.reached as usize) < d.n_users());
    }
}

#[test]
fn dense_publication_burst_is_handled() {
    // All items published in a 3-cycle burst: windowing and dedup must cope.
    let d = survey(0.12, 34);
    let c = SimConfig {
        cycles: 30,
        publish_from: 10,
        measure_from: 10,
        ..Default::default()
    };
    // publish_from..cycles is the span; shrink it by scheduling via a short
    // run instead: publish over cycles 10..13.
    let c2 = SimConfig {
        cycles: 13,
        publish_from: 10,
        measure_from: 10,
        ..c
    };
    let r = run_protocol(&d, Protocol::WhatsUp { f_like: 6 }, &c2);
    assert!(r.measured_items() == d.n_items());
    assert!(r.scores().recall > 0.0);
}

#[test]
fn every_protocol_survives_every_dataset() {
    // Cross-product smoke: no engine may panic on any workload it supports.
    let datasets = whatsup::datasets::paper_workloads(0.08, 35);
    let quick = SimConfig {
        cycles: 16,
        publish_from: 2,
        measure_from: 6,
        ..Default::default()
    };
    for d in &datasets {
        for p in [
            Protocol::WhatsUp { f_like: 4 },
            Protocol::WhatsUpCos { f_like: 4 },
            Protocol::CfWup { k: 4 },
            Protocol::CfCos { k: 4 },
            Protocol::Gossip { fanout: 4 },
            Protocol::CPubSub,
            Protocol::CWhatsUp { f_like: 4 },
            Protocol::NoAmplification { fanout: 4 },
            Protocol::NoOrientation { f_like: 4 },
        ] {
            let r = run_protocol(d, p, &quick);
            assert!(
                r.measured_items() > 0,
                "{} on {} produced no measured items",
                p.label(),
                d.name
            );
        }
        if d.social.is_some() {
            let r = run_protocol(d, Protocol::Cascade, &quick);
            assert!(r.measured_items() > 0);
        }
    }
}
